//! Scheme construction for experiments: device budget in zones, cache
//! budget in zone-equivalents, matching the paper's §4.1 methodology
//! ("we all use 25 zones; Zone-Cache gets the full 25 GiB, the others a
//! 20 GiB cache assuming at least 5 GiB OP space").

use nand::StoreKind;
use sim::Nanos;
use zns_cache::backend::GcMode;
use zns_cache::{Scheme, SchemeCache};

use crate::profile::{
    experiment_cache_config, experiment_cache_config_with_dram, middle_config, DeviceProfile,
    REGION_BYTES, ZONE_MIB,
};

/// Builds one scheme on a `device_zones`-zone budget with `cache_zones`
/// zone-equivalents of cache (Zone-Cache conventionally gets
/// `cache_zones == device_zones`; the rest is each scheme's OP).
///
/// # Panics
///
/// Panics on infeasible budgets (cache larger than device, no OP left
/// where a scheme requires it).
pub fn build_scheme(
    scheme: Scheme,
    device_zones: u32,
    cache_zones: u32,
    store: StoreKind,
    gc_mode: GcMode,
) -> SchemeCache {
    let mut profile = DeviceProfile::sparse(device_zones);
    profile.store = store;
    build_scheme_on(profile, scheme, cache_zones, gc_mode)
}

/// [`build_scheme`] with an explicit [`DeviceProfile`], so callers can
/// pick non-default flash timing (e.g. `profile.fast()` for engine-bound
/// thread-scaling runs).
///
/// # Panics
///
/// Same feasibility panics as [`build_scheme`].
pub fn build_scheme_on(
    profile: DeviceProfile,
    scheme: Scheme,
    cache_zones: u32,
    gc_mode: GcMode,
) -> SchemeCache {
    let device_zones = profile.zones;
    let store = profile.store;
    assert!(cache_zones >= 1 && cache_zones <= device_zones);
    let zone_bytes = ZONE_MIB * 1024 * 1024;
    let cache_bytes = cache_zones as u64 * zone_bytes;
    // Zone-Cache's region is the whole zone; its two in-flight buffers
    // therefore eat most of the DRAM budget (the paper's §3.2 DRAM cost).
    let region_size = match scheme {
        Scheme::Zone => zone_bytes as usize,
        _ => REGION_BYTES,
    };
    let mut config = match profile.dram_budget {
        // An explicit (pressured) budget still pays the scheme's two
        // region buffers first but takes no 1 MiB pool floor: squeezing
        // the pool to nothing is exactly what the override is for.
        Some(budget) => experiment_cache_config_with_dram(
            region_size,
            budget.saturating_sub(2 * region_size),
        ),
        None => experiment_cache_config(region_size),
    };
    config.verify_keys = store == StoreKind::Ram;
    match scheme {
        Scheme::Zone => {
            // Region == zone; the whole budget is usable (no OP).
            SchemeCache::zone_with_append_depth(
                profile.zns(),
                Some(cache_zones),
                profile.append_depth,
                config,
            )
            .expect("zone scheme construction")
        }
        Scheme::Region => SchemeCache::region(
            profile.zns(),
            middle_config(device_zones, cache_bytes, gc_mode),
            config,
        )
        .expect("region scheme construction"),
        Scheme::File => {
            let reserved = device_zones - cache_zones;
            assert!(reserved >= 1, "File-Cache needs filesystem OP zones");
            let fs = profile.f2fs(reserved);
            // Leave a full zone of user-capacity slack beyond the 8-region
            // trim. Sizing the file at ~97.5% of capacity (the previous
            // `cache_bytes / REGION_BYTES - 8`) left sealed zones ~98%
            // valid, so every cleaning pass migrated ~4000 of 4096 blocks
            // per zone — a measured 17x filesystem write amplification
            // that collapsed multi-thread File-Cache throughput. With one
            // zone of slack, region overwrites accumulate dead blocks in
            // sealed zones and the cleaner moves only the live tail.
            let zone_slack = (zone_bytes / REGION_BYTES as u64) as u32;
            let regions = (cache_bytes / REGION_BYTES as u64) as u32 - zone_slack - 8;
            SchemeCache::file_with_punch(fs, REGION_BYTES, regions, config, Nanos::ZERO)
                .expect("file scheme construction")
        }
        Scheme::Block => {
            let op_ratio = 1.0 - (cache_zones as f64 / device_zones as f64);
            // The FTL hides the OP; the cache uses the full logical space.
            let op_ratio = op_ratio.max(0.05);
            SchemeCache::block(profile.block_ssd(op_ratio), REGION_BYTES, None, config)
                .expect("block scheme construction")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_schemes_build_and_serve() {
        for scheme in Scheme::ALL {
            let cache_zones = if scheme == Scheme::Zone { 8 } else { 6 };
            let sc = build_scheme(scheme, 8, cache_zones, StoreKind::Ram, GcMode::Migrate);
            let t = sc.cache.set(b"k", b"v", Nanos::ZERO).unwrap();
            let (v, _) = sc.cache.get(b"k", t).unwrap();
            assert_eq!(v.as_deref(), Some(&b"v"[..]), "{scheme} lost a value");
        }
    }

    #[test]
    fn zone_cache_capacity_exceeds_others() {
        let zone = build_scheme(Scheme::Zone, 8, 8, StoreKind::Ram, GcMode::Migrate);
        let region = build_scheme(Scheme::Region, 8, 6, StoreKind::Ram, GcMode::Migrate);
        let zone_capacity =
            zone.cache.backend().num_regions() as u64 * zone.cache.backend().region_size() as u64;
        let region_capacity = region.cache.backend().num_regions() as u64
            * region.cache.backend().region_size() as u64;
        assert!(zone_capacity > region_capacity);
    }
}
