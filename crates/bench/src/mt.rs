//! Multi-threaded closed-loop driver.
//!
//! The single-threaded runners ([`crate::runner`]) interleave simulated
//! clients inside one thread; this module runs **real OS threads** against
//! one shared [`SchemeCache`] — the configuration the sharded-engine work
//! exists to make safe and fast. Each thread keeps its own simulated
//! timeline, RNG, and wait-free latency histograms (merged at the end).
//!
//! The headline throughput is **aggregate simulated ops/s**: total
//! operations over the slowest thread's simulated makespan. The device
//! models share per-die `busy_until` timelines, and the engine shares its
//! stall deadline and flush pipeline, so thread streams genuinely contend
//! in the simulated domain — the number reflects how much concurrency the
//! engine + device actually admit, independent of the host's core count
//! (CI runs on a single core, where wall-clock scaling is impossible by
//! construction; the report still carries the wall-clock figure for
//! multicore machines).
//!
//! A [`zns_cache::Maintainer`] runs alongside the workers so region
//! eviction overlaps with foreground traffic exactly as it would in
//! production; when it falls behind, workers evict inline (backpressure),
//! which the `inline_evictions` metric makes visible in the report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, OnceLock};
use std::time::{Duration, Instant};

// relaxed-ok(file): per-thread pacing clocks and aggregate benchmark
// counters; approximate by design (see module doc), and no memory is
// published through them.

use rand::{rngs::StdRng, Rng, SeedableRng};
use sim::{LatencyHistogram, Nanos};
use workload::Zipf;
use zns_cache::{Maintainer, SchemeCache};

/// Workload shape for one multi-threaded run.
#[derive(Clone, Debug)]
pub struct MtConfig {
    /// Worker threads.
    pub threads: usize,
    /// Total measured operations, **across all threads**. The op
    /// sequence (key ids and get/set choices) is generated once from
    /// `seed` and dealt to threads round-robin, so the offered workload
    /// is identical at every thread count — an N-thread run and a
    /// 1-thread run read the same keys in (nearly) the same global
    /// order. Per-thread op counts or per-thread RNG streams would make
    /// hit ratios and total work functions of the thread count, which
    /// poisons any scaling comparison.
    pub ops: u64,
    /// Unmeasured warmup operations (single-threaded, fills the cache).
    pub warmup_ops: u64,
    /// Distinct keys.
    pub keys: u64,
    /// Zipfian skew (paper workloads: 0.9).
    pub zipf: f64,
    /// Object value size in bytes (4 KiB for the throughput trajectory).
    pub value_len: usize,
    /// Fraction of operations that are lookups; the rest are inserts.
    /// Lookups are look-aside: a miss fetches from origin and inserts.
    pub get_ratio: f64,
    /// RNG seed for the shared op sequence.
    pub seed: u64,
}

impl MtConfig {
    /// The throughput-trajectory workload: zipf 0.9, 4 KiB objects,
    /// 90% gets.
    pub fn throughput(threads: usize) -> Self {
        MtConfig {
            threads,
            ops: 160_000,
            warmup_ops: 30_000,
            keys: 12_000,
            zipf: 0.9,
            value_len: 4096,
            get_ratio: 0.9,
            seed: 7,
        }
    }

    /// A seconds-scale variant for CI smoke runs.
    pub fn smoke(threads: usize) -> Self {
        MtConfig {
            ops: 32_000,
            warmup_ops: 2_000,
            keys: 4_000,
            ..MtConfig::throughput(threads)
        }
    }
}

/// Merged result of one multi-threaded run.
#[derive(Debug)]
pub struct MtReport {
    /// Scheme label.
    pub scheme: String,
    /// Worker threads.
    pub threads: usize,
    /// Total measured operations across all threads.
    pub ops: u64,
    /// Simulated makespan: the slowest thread's timeline advance over the
    /// measured phase.
    pub sim_elapsed: Nanos,
    /// Wall-clock duration of the measured phase.
    pub wall: Duration,
    /// Lookups issued.
    pub gets: u64,
    /// Lookups served from cache.
    pub hits: u64,
    /// Merged get-latency distribution (simulated time).
    pub get_latency: LatencyHistogram,
    /// Merged set-latency distribution (simulated time).
    pub set_latency: LatencyHistogram,
    /// Regions evicted inline by foreground writers (backpressure).
    pub inline_evictions: u64,
    /// Regions evicted by the background maintainer.
    pub maintainer_evictions: u64,
    /// Reads that raced an eviction and retried.
    pub stale_reads: u64,
    /// End-to-end write amplification (media bytes / cache flush bytes)
    /// at the end of the run.
    pub write_amplification: f64,
}

impl MtReport {
    /// Aggregate simulated throughput: the scaling number (see module
    /// docs for why this, not wall-clock, is the headline).
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.sim_elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Wall-clock throughput (core-count dependent).
    pub fn wall_ops_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Hit ratio of the measured phase.
    pub fn hit_ratio(&self) -> f64 {
        if self.gets == 0 {
            1.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }
}

fn key_bytes(id: u64) -> [u8; 12] {
    let mut k = *b"obj-00000000";
    let mut v = id;
    for slot in (4..12).rev() {
        k[slot] = b'0' + (v % 10) as u8;
        v /= 10;
    }
    k
}

/// Simulated-time window workers may run ahead of the slowest worker.
///
/// Each worker carries its own simulated clock, but the device models
/// share per-die/per-channel `busy_until` watermarks. Unbounded clock
/// skew lets one worker stamp watermarks far in the future, which then
/// drags every other worker's completions forward — a simulation
/// artifact, not contention. Bounding the skew (conservative parallel
/// discrete-event simulation) keeps watermark interactions causal: a
/// worker more than this far ahead of the slowest yields until the
/// stragglers catch up.
const SKEW_WINDOW: Nanos = Nanos::from_micros(5);

/// Runs the mixed workload against `sc` and merges per-thread results.
///
/// # Panics
///
/// Panics on cache errors — a throughput run must not silently drop I/O.
pub fn run_mt(sc: &SchemeCache, cfg: &MtConfig) -> MtReport {
    let cache = &sc.cache;
    let zipf = Zipf::new(cfg.keys.max(1), cfg.zipf);
    let value = vec![0xA5u8; cfg.value_len];

    // Warmup: populate from one thread so every configuration starts from
    // the same steady state regardless of thread count.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = Nanos::ZERO;
    for _ in 0..cfg.warmup_ops {
        let key = key_bytes(zipf.sample(&mut rng));
        let (v, t2) = cache.get(&key, t).expect("warmup get");
        t = t2;
        if v.is_none() {
            t = cache.set(&key, &value, t).expect("warmup fill");
        }
    }
    // Quiesce the flush pipeline (without sealing the partial active
    // buffer — its resident objects keep serving reads at RAM latency) so
    // the measured phase starts from an idle device at every thread count
    // instead of inheriting however much of a warmup program window was
    // still in flight.
    t = cache.drain_flushes(t);
    let warm_clock = t;

    // One shared op sequence, generated up front from one RNG and dealt
    // to threads round-robin (thread j runs ops j, j+N, j+2N, ...). See
    // the `ops` field docs: this is what makes the offered workload
    // invariant under the thread count.
    let mut seq_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_5EED);
    let op_seq: Vec<(u64, bool)> = (0..cfg.ops)
        .map(|_| (zipf.sample(&mut seq_rng), seq_rng.gen_bool(cfg.get_ratio)))
        .collect();
    let op_seq = &op_seq;

    // Background maintainer overlaps eviction with the measured phase.
    let maintainer = Maintainer::new(std::sync::Arc::clone(cache)).spawn(Duration::from_millis(1));

    let gets = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    let makespan = AtomicU64::new(0);
    let get_latency = LatencyHistogram::new();
    let set_latency = LatencyHistogram::new();
    // One published clock per worker; finished workers park at MAX so
    // they never hold the window back (see SKEW_WINDOW).
    let clocks: Vec<AtomicU64> = (0..cfg.threads)
        .map(|_| AtomicU64::new(warm_clock.as_nanos()))
        .collect();
    // The wall clock brackets exactly the measured loops: every worker
    // arrives at the barrier before the leader starts the clock, a second
    // wait releases them together, and the clock stops only once the last
    // worker is done. Timing the whole `thread::scope` instead (spawn and
    // join overhead included, clock started before any worker existed)
    // made `wall_ops_per_sec` non-monotonic with the thread count.
    let barrier = Barrier::new(cfg.threads.max(1));
    let wall_start: OnceLock<Instant> = OnceLock::new();
    let wall_elapsed: OnceLock<Duration> = OnceLock::new();
    std::thread::scope(|s| {
        for thread in 0..cfg.threads {
            let value = &value;
            let gets = &gets;
            let hits = &hits;
            let makespan = &makespan;
            let get_latency = &get_latency;
            let set_latency = &set_latency;
            let clocks = &clocks;
            let barrier = &barrier;
            let wall_start = &wall_start;
            let wall_elapsed = &wall_elapsed;
            s.spawn(move || {
                // Per-thread state is allocated BEFORE the start barrier:
                // the histograms alone are tens of KiB of atomics each,
                // and paying that inside the timed window charged every
                // thread a fixed setup toll that skewed short runs and
                // made wall_ops_per_sec dip at higher thread counts.
                let my_gets = LatencyHistogram::new();
                let my_sets = LatencyHistogram::new();
                let mut my_get_count = 0u64;
                let mut my_hits = 0u64;
                if barrier.wait().is_leader() {
                    let _ = wall_start.set(Instant::now());
                }
                // No worker issues an op before the clock is running.
                barrier.wait();
                let mut t = warm_clock;
                for &(key_id, is_get) in op_seq.iter().skip(thread).step_by(cfg.threads.max(1)) {
                    clocks[thread].store(t.as_nanos(), Ordering::Relaxed);
                    loop {
                        let min = clocks
                            .iter()
                            .map(|c| c.load(Ordering::Relaxed))
                            .min()
                            .unwrap_or(0);
                        if t.as_nanos() <= min.saturating_add(SKEW_WINDOW.as_nanos()) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    let key = key_bytes(key_id);
                    let start = t;
                    if is_get {
                        let (v, done) = cache.get(&key, start).expect("measured get");
                        my_get_count += 1;
                        let done = if v.is_some() {
                            my_hits += 1;
                            done
                        } else {
                            cache.set(&key, value, done).expect("measured fill")
                        };
                        my_gets.record(done - start);
                        t = done;
                    } else {
                        let done = cache.set(&key, value, start).expect("measured set");
                        my_sets.record(done - start);
                        t = done;
                    }
                }
                clocks[thread].store(u64::MAX, Ordering::Relaxed);
                gets.fetch_add(my_get_count, Ordering::Relaxed);
                hits.fetch_add(my_hits, Ordering::Relaxed);
                makespan.fetch_max((t - warm_clock).as_nanos(), Ordering::Relaxed);
                get_latency.merge(&my_gets);
                set_latency.merge(&my_sets);
                if barrier.wait().is_leader() {
                    let _ = wall_elapsed
                        .set(wall_start.get().expect("wall clock started").elapsed());
                }
            });
        }
    });
    let wall = wall_elapsed.get().copied().unwrap_or_default();
    drop(maintainer);

    let m = cache.metrics();
    MtReport {
        scheme: sc.scheme.label().to_string(),
        threads: cfg.threads,
        ops: cfg.ops,
        sim_elapsed: Nanos::from_nanos(makespan.load(Ordering::Relaxed)),
        wall,
        gets: gets.load(Ordering::Relaxed),
        hits: hits.load(Ordering::Relaxed),
        get_latency,
        set_latency,
        inline_evictions: m.inline_evictions,
        maintainer_evictions: m.maintainer_evictions,
        stale_reads: m.stale_reads,
        write_amplification: cache.write_amplification(),
    }
}

fn schemes_json(runs: &[MtReport], indent: &str) -> String {
    let mut out = String::new();
    let mut schemes: Vec<&str> = Vec::new();
    for r in runs {
        if !schemes.contains(&r.scheme.as_str()) {
            schemes.push(&r.scheme);
        }
    }
    for (si, scheme) in schemes.iter().enumerate() {
        out.push_str(&format!("{indent}\"{scheme}\": {{\n"));
        let of_scheme: Vec<&MtReport> = runs.iter().filter(|r| r.scheme == *scheme).collect();
        for (ri, r) in of_scheme.iter().enumerate() {
            out.push_str(&format!(
                "{indent}  \"{}\": {{\"ops_per_sec\": {:.1}, \"wall_ops_per_sec\": {:.1}, \"hit_ratio\": {:.4}, \"get_p50_ns\": {}, \"get_p99_ns\": {}, \"stale_reads\": {}, \"inline_evictions\": {}, \"maintainer_evictions\": {}}}{}\n",
                r.threads,
                r.ops_per_sec(),
                r.wall_ops_per_sec(),
                r.hit_ratio(),
                r.get_latency.percentile(50.0).as_nanos(),
                r.get_latency.percentile(99.0).as_nanos(),
                r.stale_reads,
                r.inline_evictions,
                r.maintainer_evictions,
                if ri + 1 == of_scheme.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "{indent}}}{}\n",
            if si + 1 == schemes.len() { "" } else { "," }
        ));
    }
    out
}

/// Renders a thread-sweep as the `BENCH_throughput.json` artifact
/// (hand-written JSON — the offline dependency set has no serializer for
/// nested maps).
///
/// `sections` pairs a device-profile label with its runs. The sweep ships
/// two: `"flash"` (realistic NAND timing — throughput saturates at the
/// device's media bandwidth, so curves flatten once the device is the
/// bottleneck) and `"fast_device"` (near-instant media, the simulation
/// analogue of nullblk — isolates the engine's own scalability, which is
/// what the lock-striping work changes).
pub fn throughput_json(
    cfg: &MtConfig,
    device: &crate::profile::DeviceProfile,
    sections: &[(&str, &[MtReport])],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"workload\": {{\"zipf\": {}, \"value_len\": {}, \"get_ratio\": {}, \"keys\": {}, \"total_ops\": {}}},\n",
        cfg.zipf, cfg.value_len, cfg.get_ratio, cfg.keys, cfg.ops
    ));
    out.push_str(&format!(
        "  \"device\": {{\"zones\": {}, \"stripe_dies\": {}, \"append_depth\": {}}},\n",
        device.zones, device.stripe_dies, device.append_depth
    ));
    out.push_str("  \"profiles\": {\n");
    for (pi, (label, runs)) in sections.iter().enumerate() {
        out.push_str(&format!("    \"{label}\": {{\n"));
        out.push_str(&schemes_json(runs, "      "));
        out.push_str(&format!(
            "    }}{}\n",
            if pi + 1 == sections.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::build_scheme;
    use nand::StoreKind;
    use zns_cache::backend::GcMode;
    use zns_cache::Scheme;

    #[test]
    fn mt_run_produces_consistent_report() {
        let sc = build_scheme(Scheme::Region, 8, 6, StoreKind::Sparse, GcMode::Migrate);
        let cfg = MtConfig {
            threads: 2,
            ops: 1_000,
            warmup_ops: 300,
            keys: 1_000,
            zipf: 0.9,
            value_len: 1024,
            get_ratio: 0.9,
            seed: 3,
        };
        let r = run_mt(&sc, &cfg);
        assert_eq!(r.ops, 1_000);
        assert!(r.gets > 0 && r.hits <= r.gets);
        assert_eq!(r.get_latency.count() + r.set_latency.count(), r.ops);
        assert!(r.ops_per_sec() > 0.0);
        // The barriered wall clock measured a real (non-zero) window.
        assert!(r.wall > Duration::ZERO && r.wall_ops_per_sec() > 0.0);
    }

    #[test]
    fn offered_workload_is_thread_count_invariant() {
        // The same config at 1 and 4 threads must issue the same ops with
        // the same get/set split; the hit ratio may only drift by true
        // interleaving effects, not by workload differences.
        let report = |threads: usize| {
            let sc = build_scheme(Scheme::Region, 8, 6, StoreKind::Sparse, GcMode::Migrate);
            let cfg = MtConfig {
                threads,
                ops: 2_000,
                warmup_ops: 500,
                keys: 1_000,
                zipf: 0.9,
                value_len: 1024,
                get_ratio: 0.9,
                seed: 3,
            };
            run_mt(&sc, &cfg)
        };
        let r1 = report(1);
        let r4 = report(4);
        assert_eq!(r1.ops, r4.ops, "total ops must not scale with threads");
        assert_eq!(r1.gets, r4.gets, "get/set split must not depend on threads");
        assert!(
            (r1.hit_ratio() - r4.hit_ratio()).abs() < 0.02,
            "hit ratio drifted with thread count: {} vs {}",
            r1.hit_ratio(),
            r4.hit_ratio()
        );
    }

    #[test]
    fn dram_pressure_differentiates_schemes() {
        // Under the default 48 MiB DRAM budget every scheme served ~97%
        // of gets from the DRAM tier and reported byte-identical
        // throughput/hit rows — the device never spoke. With the budget
        // squeezed below the working set, most gets reach the device and
        // the four schemes must stop being indistinguishable: at least
        // one pair must differ in simulated throughput.
        use crate::profile::DeviceProfile;
        use crate::setup::build_scheme_on;

        let cfg = MtConfig {
            threads: 2,
            ops: 3_000,
            warmup_ops: 1_500,
            keys: 2_000,
            zipf: 0.9,
            value_len: 4096,
            get_ratio: 0.9,
            seed: 3,
        };
        let profile = DeviceProfile::sparse(8).with_dram_budget(2 * 1024 * 1024);
        let mut rates = Vec::new();
        for scheme in Scheme::ALL {
            let cache_zones = match scheme {
                Scheme::Zone => 8,
                Scheme::File => 5,
                _ => 6,
            };
            let sc = build_scheme_on(profile, scheme, cache_zones, GcMode::Migrate);
            let r = run_mt(&sc, &cfg);
            rates.push((scheme, r.ops_per_sec()));
        }
        let distinct = rates
            .iter()
            .any(|&(_, a)| rates.iter().any(|&(_, b)| (a - b).abs() > 1e-6));
        assert!(
            distinct,
            "all four schemes still report identical throughput under DRAM \
             pressure: {rates:?}"
        );
    }

    #[test]
    fn json_artifact_shape() {
        let sc = build_scheme(Scheme::Zone, 8, 8, StoreKind::Sparse, GcMode::Migrate);
        let cfg = MtConfig {
            threads: 1,
            ops: 200,
            warmup_ops: 100,
            keys: 500,
            zipf: 0.9,
            value_len: 512,
            get_ratio: 0.9,
            seed: 3,
        };
        let r = run_mt(&sc, &cfg);
        let profile = crate::profile::DeviceProfile::sparse(8);
        let json = throughput_json(&cfg, &profile, &[("flash", std::slice::from_ref(&r))]);
        assert!(json.contains("\"flash\""));
        assert!(json.contains("\"Zone-Cache\""));
        assert!(json.contains("\"ops_per_sec\""));
        assert!(json.contains("\"stripe_dies\": 8"));
        assert!(json.contains("\"append_depth\": 16"));
        assert!(json.contains("\"1\""));
        // Balanced braces — cheap structural sanity for hand-built JSON.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }
}
