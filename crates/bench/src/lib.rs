//! Benchmark harness reproducing every table and figure of the paper.
//!
//! Each `repro_*` binary regenerates one evaluation artifact:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `repro_fig2` | Fig. 2 — overall throughput + hit ratio, 4 schemes |
//! | `repro_fig3` | Fig. 3 — region-buffer fill time, large vs small regions |
//! | `repro_fig4_table1` | Fig. 4 + Table 1 — OP-ratio sweep (throughput, hit ratio, WA) |
//! | `repro_fig5` | Fig. 5 — RocksDB secondary-cache: ops/s, hit ratio, P50, P99 |
//! | `repro_table2` | Table 2 — Zone-Cache cache-size sweep |
//! | `repro_ablation_codesign` | §3.4 — hinted (co-design) GC vs migrate GC |
//! | `repro_ablation_policies` | extra — eviction/admission policy ablation |
//!
//! All experiments run at 1/64 of the paper's hardware scale (documented in
//! DESIGN.md); every binary accepts `--ops`, `--keys` or `--zones` style
//! flags to move along the scale axis.

pub mod args;
pub mod mt;
pub mod openloop;
pub mod profile;
pub mod report;
pub mod runner;
pub mod lsm_setup;
pub mod setup;

pub use args::Flags;

/// Handles the shared `--trace-out <file.jsonl>` flag: enables the
/// global event tracer when present and returns the output path (empty
/// string = tracing stays off). Pair with [`finish_trace`] at exit.
pub fn start_trace(flags: &Flags) -> String {
    let path = flags.str("trace-out", "");
    if !path.is_empty() {
        zns_cache::trace::enable();
    }
    path
}

/// Dumps the merged trace timeline to `path` as JSONL (no-op on an
/// empty path). Reports how many events were lost to ring wraparound so
/// a truncated trace is never mistaken for a complete one.
///
/// # Panics
///
/// Panics when the trace file cannot be written — an experiment asked
/// for a trace and silently losing it would invalidate the diagnosis.
pub fn finish_trace(path: &str) {
    if path.is_empty() {
        return;
    }
    let n = zns_cache::trace::dump_to_file(path).expect("write trace file");
    let dropped = zns_cache::trace::dropped();
    println!("wrote {n} trace events to {path} ({dropped} dropped to ring wraparound)");
}
pub use mt::{run_mt, throughput_json, MtConfig, MtReport};
pub use openloop::{latency_json, run_open_loop, OpenLoopConfig, OpenLoopReport};
pub use profile::{DeviceProfile, ZONE_MIB};
pub use report::Table;
pub use runner::{run_cachebench, MicroReport};
pub use lsm_setup::{build_lsm_experiment, LsmExperiment};
pub use setup::{build_scheme, build_scheme_on};
