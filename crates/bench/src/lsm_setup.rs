//! End-to-end (RocksDB-style) experiment construction: an LSM store on the
//! HDD with one of the four schemes as its secondary cache (§4.2).

use std::sync::Arc;

use lsm::{Db, DbConfig, NavySecondary};
use nand::StoreKind;
use sim::Nanos;
use zns_cache::backend::GcMode;
use zns_cache::{Scheme, SchemeCache};

use crate::setup::build_scheme;

/// A database wired to a scheme-backed secondary cache.
pub struct LsmExperiment {
    /// The database under test.
    pub db: Db,
    /// The flash cache beneath the block cache.
    pub scheme: SchemeCache,
}

/// Builds the paper's §4.2 stack: mini-RocksDB on an HDD, DRAM block cache
/// (scaled 512 KiB for the paper's 32 MiB), and `cache_zones` zones of
/// flash secondary cache under `scheme`.
///
/// The device budget follows the paper's "reserve enough OP space" setup:
/// Zone-Cache needs none, the filesystem needs two zones (log heads +
/// cleaning floor), Block/Region get one zone of OP.
///
/// Flash payloads are RAM-backed: secondary-cache hits must return real
/// block bytes for the database to parse.
///
/// # Panics
///
/// Panics on infeasible budgets, as [`build_scheme`].
pub fn build_lsm_experiment(
    scheme: Scheme,
    cache_zones: u32,
    dram_block_cache_bytes: usize,
    hdd_blocks: u64,
) -> LsmExperiment {
    let device_zones = match scheme {
        Scheme::Zone => cache_zones,
        // The paper's own provisioning: "F2FS needs at least 38 zones ...
        // to build a 20 GiB cache" — ~1.9x the cache size.
        Scheme::File => (cache_zones * 19).div_ceil(10).max(cache_zones + 2),
        // "We ... reserve enough OP space to reduce GC and focus on tail
        // latency and throughput" (§4.2): generous OP for both. The FTL
        // still garbage-collects internally (its erase blocks mix pages
        // from many cache regions), while the middle layer's zone slots
        // die wholesale — the asymmetry the paper measures.
        Scheme::Block | Scheme::Region => cache_zones + (cache_zones / 2).max(2),
    };
    let sc = build_scheme(scheme, device_zones, cache_zones, StoreKind::Ram, GcMode::Migrate);
    let secondary = Arc::new(NavySecondary::new(sc.cache.clone()));
    let db = Db::open(DbConfig {
        dev: crate::profile::DeviceProfile::lsm_hdd(hdd_blocks),
        memtable_bytes: 4 * 1024 * 1024,
        l0_trigger: 4,
        l1_target_bytes: 32 * 1024 * 1024,
        level_multiplier: 10,
        table_target_bytes: 2 * 1024 * 1024,
        bloom_bits_per_key: 10,
        block_cache_bytes: dram_block_cache_bytes,
        secondary: Some(secondary),
        op_cpu: Nanos::from_nanos(1_000),
    })
    .expect("db open");
    LsmExperiment { db, scheme: sc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm::bench::{fill_random, read_random};

    #[test]
    fn lsm_with_secondary_serves_reads() {
        let exp = build_lsm_experiment(Scheme::Region, 6, 64 * 1024, 65_536);
        let t = fill_random(&exp.db, 20_000, 64, 3, Nanos::ZERO).unwrap();
        let report = read_random(&exp.db, 20_000, 5_000, 15.0, 2, 4, t).unwrap();
        assert_eq!(report.ops, 5_000);
        assert!(report.found * 10 > report.ops * 8, "too few found: {}", report.found);
        // The secondary cache actually participated.
        let m = exp.scheme.cache.metrics();
        assert!(m.sets > 0, "no demotions reached flash");
        assert!(m.gets > 0, "no lookups reached flash");
    }
}
