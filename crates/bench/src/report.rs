//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple aligned-column table that prints as GitHub-flavoured markdown.
///
/// # Example
///
/// ```
/// let mut t = zns_cache_bench::Table::new(vec!["scheme", "throughput"]);
/// t.row(vec!["Zone-Cache".into(), "0.31".into()]);
/// let s = t.render();
/// assert!(s.contains("Zone-Cache"));
/// assert!(s.contains("| scheme"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new(header: Vec<&str>) -> Self {
        Table {
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch — a harness bug.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Renders as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 4 significant-ish digits for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["a", "longer"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with('|') && l.ends_with('|')));
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(123.456), "123.5");
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(f(0.12345), "0.1235");
    }
}
