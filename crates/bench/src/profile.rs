//! Scaled device profiles.
//!
//! The paper's testbed: 1 TB WD ZN540 (904 zones × 1077 MiB), a
//! hardware-compatible 1 TB SN540 regular SSD, a nullblk metadata device
//! and a 6 TB HDD. The host here has 15 GiB of DRAM and one core, so every
//! experiment runs at **1/64 scale**: 16 MiB zones, 256 KiB cache regions
//! (the paper's 16 MiB regions : 1077 MiB zones ≈ our 256 KiB : 16 MiB),
//! with zone counts per experiment chosen to preserve the paper's
//! cache-to-device and working-set-to-cache ratios.

use std::sync::Arc;

use f2fs_lite::{FileSystem, FsConfig};
use ftl::{BlockSsd, FtlConfig};
use hdd::{Hdd, HddConfig};
use nand::{Geometry, NandConfig, NandTiming, StoreKind};
use sim::BLOCK_SIZE;
use zns::{ZnsConfig, ZnsDevice};
use zns_cache::backend::{GcMode, MiddleConfig};
use zns_cache::{Admission, CacheConfig, EvictionPolicy};

/// Scaled zone size in MiB (paper: 1077 MiB).
pub const ZONE_MIB: u64 = 16;

/// Scaled cache region size in bytes (paper: 16 MiB).
pub const REGION_BYTES: usize = 256 * 1024;

/// 4 KiB blocks per zone.
pub const ZONE_BLOCKS: u64 = ZONE_MIB * 1024 * 1024 / BLOCK_SIZE as u64;

/// A device family at the scaled geometry.
#[derive(Clone, Copy, Debug)]
pub struct DeviceProfile {
    /// Zones on the device.
    pub zones: u32,
    /// Whether flash payloads are retained (RAM) or discarded (Sparse).
    pub store: StoreKind,
    /// Flash timing. Defaults to flash-realistic; [`DeviceProfile::fast`]
    /// swaps in a near-instant device (the simulation analogue of running
    /// on nullblk, as the paper does for metadata) so a benchmark measures
    /// the cache software stack rather than NAND bandwidth.
    pub timing: NandTiming,
    /// Dies a zone stripes over (must divide the geometry's 8 dies and
    /// the zone's 8 erase blocks: 1, 2, 4 or 8).
    pub stripe_dies: u32,
    /// Zone-append commands kept in flight during a region flush.
    pub append_depth: usize,
    /// Overrides the per-scheme DRAM budget ([`DRAM_BUDGET`] when
    /// `None`). The default 48 MiB budget swallows the standard 12k-key ×
    /// 4 KiB working set whole, which makes every scheme serve ~97% of
    /// gets from DRAM and report byte-identical throughput — a pressured
    /// budget (see [`DeviceProfile::with_dram_budget`]) is what forces
    /// traffic to the device where the schemes actually differ.
    pub dram_budget: Option<usize>,
}

impl DeviceProfile {
    /// A profile with `zones` zones, discarding payloads (experiments).
    pub fn sparse(zones: u32) -> Self {
        DeviceProfile {
            zones,
            store: StoreKind::Sparse,
            timing: NandTiming::default(),
            stripe_dies: 8,
            append_depth: zns_cache::backend::DEFAULT_APPEND_DEPTH,
            dram_budget: None,
        }
    }

    /// A payload-retaining profile (integrity tests, small runs).
    pub fn ram(zones: u32) -> Self {
        DeviceProfile {
            zones,
            store: StoreKind::Ram,
            timing: NandTiming::default(),
            stripe_dies: 8,
            append_depth: zns_cache::backend::DEFAULT_APPEND_DEPTH,
            dram_budget: None,
        }
    }

    /// Same geometry on a near-instant device, for engine-bound runs.
    pub fn fast(mut self) -> Self {
        self.timing = NandTiming::fast_test();
        self
    }

    /// Narrows (or widens) the zone stripe.
    ///
    /// # Panics
    ///
    /// Panics unless `dies` is 1, 2, 4 or 8 — the divisors the 8-die
    /// geometry and 8-block zones admit.
    pub fn with_stripe_dies(mut self, dies: u32) -> Self {
        assert!(
            matches!(dies, 1 | 2 | 4 | 8),
            "stripe width {dies} does not divide 8 dies / 8 zone blocks"
        );
        self.stripe_dies = dies;
        self
    }

    /// Overrides the flush append queue depth (1 = synchronous QD1).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_append_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "append depth must be at least 1");
        self.append_depth = depth;
        self
    }

    /// Caps the per-scheme DRAM budget at `bytes` (region buffers are
    /// still paid out of it first; what remains — possibly nothing — is
    /// the hot-object pool). Use this to pressure the DRAM tier so the
    /// working set spills to the device and per-scheme differences become
    /// visible; 0 disables the DRAM tier outright.
    pub fn with_dram_budget(mut self, bytes: usize) -> Self {
        self.dram_budget = Some(bytes);
        self
    }

    fn geometry(&self) -> Geometry {
        // 4 channels × 2 dies; 2 MiB erase blocks; zones of 8 blocks
        // striped over all 8 dies → one die group, blocks_per_die ==
        // zone count exactly for any count.
        Geometry::new(4, 2, self.zones, 512)
    }

    /// Raw capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.zones as u64 * ZONE_MIB * 1024 * 1024
    }

    /// ZNS device at this profile.
    pub fn zns(&self) -> Arc<ZnsDevice> {
        Arc::new(ZnsDevice::new(ZnsConfig {
            nand: NandConfig {
                geometry: self.geometry(),
                timing: self.timing,
                store: self.store,
            },
            zone_blocks: 8,
            stripe_dies: self.stripe_dies,
            max_open_zones: 14,
            max_active_zones: 28,
            zone_cap_blocks: None,
        }))
    }

    /// Hardware-compatible conventional SSD (same flash, FTL interface)
    /// reserving `op_ratio` of raw capacity.
    pub fn block_ssd(&self, op_ratio: f64) -> Arc<BlockSsd> {
        Arc::new(BlockSsd::new(FtlConfig {
            nand: NandConfig {
                geometry: self.geometry(),
                timing: self.timing,
                store: self.store,
            },
            op_ratio,
            // Watermarks scale with the device so small experiment
            // configurations do not thrash.
            gc_low_water: (self.zones / 4).max(4),
            gc_high_water: (self.zones / 2).max(8),
            gc_pages_per_host_write: 8,
        }))
    }

    /// `f2fs-lite` over this ZNS profile with `reserved_zones` of cleaning
    /// reserve (the paper cites ~20% for F2FS) and a nullblk-like metadata
    /// disk (paper: 6 GiB → scaled 96 MiB).
    pub fn f2fs(&self, reserved_zones: u32) -> Arc<FileSystem> {
        Arc::new(FileSystem::format(FsConfig {
            zns: ZnsConfig {
                nand: NandConfig {
                    geometry: self.geometry(),
                    timing: self.timing,
                    store: self.store,
                },
                zone_blocks: 8,
                stripe_dies: self.stripe_dies,
                max_open_zones: 14,
                max_active_zones: 28,
                zone_cap_blocks: None,
            },
            meta_blocks: 96 * 256, // 96 MiB of 4 KiB blocks
            reserved_zones,
            // The cleaner's floor must stay well inside the reserve or the
            // filesystem cleans on every write.
            min_free_zones: 2,
            node_fanout: 1024,
            dirty_node_flush_threshold: 64,
            // F2FS checkpoints periodically; every 32 MiB of data writes
            // is a conservative stand-in for its time+dirty-threshold
            // trigger, charging the metadata writes File-Cache really pays.
            checkpoint_interval_blocks: 8192,
        }))
    }

    /// The HDD under the LSM store (paper: 6 TB ST6000NM0115 → scaled).
    pub fn lsm_hdd(blocks: u64) -> Arc<Hdd> {
        Arc::new(Hdd::new(HddConfig::enterprise_7200rpm(blocks)))
    }
}

/// Middle-layer (Region-Cache) configuration for a device of
/// `device_zones` with `cache_bytes` exposed to the cache.
///
/// # Panics
///
/// Panics when the cache would leave no GC reserve (configuration bug in
/// the experiment).
pub fn middle_config(device_zones: u32, cache_bytes: u64, gc_mode: GcMode) -> MiddleConfig {
    let slots_per_zone = (ZONE_BLOCKS * BLOCK_SIZE as u64 / REGION_BYTES as u64) as u32;
    let total_slots = device_zones as u64 * slots_per_zone as u64;
    let user_regions = (cache_bytes / REGION_BYTES as u64) as u32;
    let reserve_slots = total_slots
        .checked_sub(user_regions as u64)
        .expect("cache larger than device");
    let reserve_zones = (reserve_slots / slots_per_zone as u64) as u32;
    assert!(
        reserve_zones >= 1,
        "Region-Cache needs at least one zone of OP (got {cache_bytes} bytes on {device_zones} zones)"
    );
    MiddleConfig {
        region_size: REGION_BYTES,
        user_regions,
        min_empty_zones: (reserve_zones / 2).max(1),
        victim_valid_ratio: 0.2,
        concurrent_open_zones: 4,
        // Region writes go down as zone appends: queued page programs the
        // controller can suspend at page granularity, so cache reads on
        // the same dies pay `program_suspend` instead of `read_suspend`.
        use_append: true,
        gc_mode,
    }
}

/// Total DRAM budget per scheme (hot-object pool + region buffers). The
/// paper's comparisons hold hardware cost equal, so a scheme's in-flight
/// region buffers are paid out of the same budget as its DRAM pool —
/// this is what makes zone-sized (giant) region buffers expensive.
pub const DRAM_BUDGET: usize = 48 * 1024 * 1024;

/// Cache engine configuration for experiments: payload verification off
/// (sparse stores), LRU regions, admit-all — the paper's setup. The DRAM
/// pool is the budget minus the scheme's two region buffers: one active
/// plus one detached in-flight flush image (the pipeline serves reads
/// from that image at DRAM latency until its flush ticket resolves).
pub fn experiment_cache_config(region_size: usize) -> CacheConfig {
    let buffers = 2 * region_size;
    let dram_bytes = DRAM_BUDGET.saturating_sub(buffers).max(1024 * 1024);
    experiment_cache_config_with_dram(region_size, dram_bytes)
}

/// [`experiment_cache_config`] with an explicit DRAM *pool* size (bytes
/// actually given to the hot-object tier, after any buffer accounting
/// the caller chooses to do). 0 disables the DRAM tier.
pub fn experiment_cache_config_with_dram(_region_size: usize, dram_bytes: usize) -> CacheConfig {
    CacheConfig {
        eviction: EvictionPolicy::Lru,
        admission: Admission::Always,
        // CacheLib always fronts flash with a DRAM pool (scaled from the
        // multi-GiB pools CacheBench provisions), net of region buffers.
        dram_bytes,
        in_memory_buffers: 1,
        insert_cpu: sim::Nanos::from_nanos(2_000),
        lookup_cpu: sim::Nanos::from_nanos(1_000),
        index_remove_cpu: sim::Nanos::from_nanos(2_000),
        index_remove_contended_cpu: sim::Nanos::from_nanos(80_000),
        verify_keys: false,
        eviction_lock_threshold: 4096,
        reinsertion_fraction: 0.0,
        maintenance_interval_sets: 64,
        retry: Default::default(),
        read_retry_attempts: 3,
        // Keep a small clean pool ahead of the writers so the maintainer
        // (when running) absorbs eviction cost off the foreground path.
        clean_region_watermark: 2,
        dram_shards: 16,
        // The DRAM pool runs write-back (CacheLib's demotion pipeline):
        // hot overwrites are absorbed in DRAM and only DRAM-evicted
        // entries are demoted into the flash log, which is what keeps the
        // flash program stream near the irreducible working-set churn
        // instead of the full set rate.
        dram_write_back: true,
        seed: 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zns_profile_shape() {
        let p = DeviceProfile::ram(25);
        let dev = p.zns();
        assert_eq!(dev.num_zones(), 25);
        assert_eq!(dev.zone_cap_bytes(), ZONE_MIB * 1024 * 1024);
        assert_eq!(dev.capacity_bytes(), p.capacity_bytes());
    }

    #[test]
    fn block_ssd_capacity_reflects_op() {
        let p = DeviceProfile::ram(25);
        let ssd = p.block_ssd(0.2);
        let logical = sim::BlockDevice::block_count(ssd.as_ref()) * BLOCK_SIZE as u64;
        let expect = (p.capacity_bytes() as f64 * 0.8) as u64;
        assert!((logical as i64 - expect as i64).unsigned_abs() < 4 * BLOCK_SIZE as u64);
    }

    #[test]
    fn f2fs_capacity_excludes_reserve() {
        let p = DeviceProfile::ram(25);
        let fs = p.f2fs(5);
        assert_eq!(fs.capacity_bytes(), 20 * ZONE_MIB * 1024 * 1024);
    }

    #[test]
    fn middle_config_math() {
        // 25 zones, 20 zones of cache → 5 zones reserve.
        let cfg = middle_config(25, 20 * ZONE_MIB * 1024 * 1024, GcMode::Migrate);
        assert_eq!(cfg.user_regions, 20 * 64);
        assert_eq!(cfg.min_empty_zones, 2);
        assert_eq!(cfg.region_size, REGION_BYTES);
    }

    #[test]
    #[should_panic(expected = "OP")]
    fn middle_config_rejects_full_device() {
        let _ = middle_config(25, 25 * ZONE_MIB * 1024 * 1024, GcMode::Migrate);
    }
}
