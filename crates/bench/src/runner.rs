//! The CacheBench experiment runner.

use sim::{ClosedLoop, LatencyHistogram, Nanos};
use workload::{value_for_key, CacheBench, CacheBenchConfig, Op};
use zns_cache::SchemeCache;

/// Results of one CacheBench run against one scheme.
#[derive(Debug)]
pub struct MicroReport {
    /// Scheme label.
    pub scheme: String,
    /// Measured operations (after warmup).
    pub ops: u64,
    /// Simulated duration of the measured phase.
    pub sim_time: Nanos,
    /// Lookups in the measured phase.
    pub gets: u64,
    /// Hits in the measured phase.
    pub hits: u64,
    /// Get-latency distribution (measured phase).
    pub get_latency: LatencyHistogram,
    /// Set-latency distribution (measured phase).
    pub set_latency: LatencyHistogram,
    /// End-to-end write amplification over the whole run.
    pub wa: f64,
}

impl MicroReport {
    /// Hit ratio of the measured phase.
    pub fn hit_ratio(&self) -> f64 {
        if self.gets == 0 {
            1.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }

    /// Throughput in million operations per simulated minute — the unit of
    /// the paper's Fig. 2/Fig. 4.
    pub fn mops_per_min(&self) -> f64 {
        let secs = self.sim_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs * 60.0 / 1e6
        }
    }
}

/// Runs the paper's CacheBench mix against a scheme: `warmup` unmeasured
/// operations to reach steady state, then `ops` measured ones, issued by
/// `workers` closed-loop clients.
///
/// Lookups follow look-aside semantics: a miss fetches the object from the
/// (simulated) origin and inserts it, so the hit ratio reflects what the
/// cache retains — the quantity the paper's Fig. 2/4/5 report.
///
/// # Panics
///
/// Panics on cache errors — an experiment must not silently drop I/O.
pub fn run_cachebench(
    sc: &SchemeCache,
    workload: CacheBenchConfig,
    warmup: u64,
    ops: u64,
    workers: usize,
) -> MicroReport {
    let mut bench = CacheBench::new(workload);
    let cache = &sc.cache;

    // Warmup phase: single timeline, metrics discarded.
    let mut t = Nanos::ZERO;
    for _ in 0..warmup {
        match bench.next_op() {
            Op::Get { id, key } => {
                let (value, t2) = cache.get(&key, t).expect("warmup get");
                t = t2;
                if value.is_none() {
                    let fill = value_for_key(id, bench.version_of(id));
                    t = cache.set(&key, &fill, t).expect("warmup miss-fill");
                }
            }
            Op::Set { key, value, .. } => {
                t = cache.set(&key, &value, t).expect("warmup set");
            }
            Op::Delete { key, .. } => t = cache.delete(&key, t).expect("warmup delete").1,
        }
    }

    // Measured phase.
    let base = t;
    let mut remaining = ops;
    let mut gets = 0u64;
    let mut hits = 0u64;
    let get_latency = LatencyHistogram::new();
    let set_latency = LatencyHistogram::new();
    let report = ClosedLoop::new(workers).run(|_worker, now| {
        if remaining == 0 {
            return None;
        }
        remaining -= 1;
        let start = base + now;
        match bench.next_op() {
            Op::Get { id, key } => {
                let (value, done) = cache.get(&key, start).expect("measured get");
                gets += 1;
                let done = if value.is_some() {
                    hits += 1;
                    done
                } else {
                    // Look-aside miss: fetch from origin and insert.
                    let fill = value_for_key(id, bench.version_of(id));
                    cache.set(&key, &fill, done).expect("measured miss-fill")
                };
                get_latency.record(done - start);
                Some(done - base)
            }
            Op::Set { key, value, .. } => {
                let done = cache.set(&key, &value, start).expect("measured set");
                set_latency.record(done - start);
                Some(done - base)
            }
            Op::Delete { key, .. } => {
                let (_, done) = cache.delete(&key, start).expect("measured delete");
                Some(done - base)
            }
        }
    });

    MicroReport {
        scheme: sc.scheme.label().to_string(),
        ops: report.ops,
        sim_time: report.makespan,
        gets,
        hits,
        get_latency,
        set_latency,
        wa: sc.write_amplification(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{experiment_cache_config, middle_config, DeviceProfile, REGION_BYTES};
    use zns_cache::backend::GcMode;

    #[test]
    fn micro_report_math() {
        let r = MicroReport {
            scheme: "x".into(),
            ops: 60_000_000,
            sim_time: Nanos::from_secs(60),
            gets: 10,
            hits: 9,
            get_latency: LatencyHistogram::new(),
            set_latency: LatencyHistogram::new(),
            wa: 1.0,
        };
        assert!((r.mops_per_min() - 60.0).abs() < 1e-9);
        assert!((r.hit_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn runner_drives_a_real_scheme() {
        // Small Region-Cache; RAM store so payloads round-trip.
        let profile = DeviceProfile::ram(8);
        let dev = profile.zns();
        let middle = middle_config(8, 6 * 16 * 1024 * 1024, GcMode::Migrate);
        let mut cfg = experiment_cache_config(REGION_BYTES);
        cfg.verify_keys = true;
        let sc = zns_cache::SchemeCache::region(dev, middle, cfg).unwrap();
        let workload = workload::CacheBenchConfig::paper_mix(5_000, 7);
        let report = run_cachebench(&sc, workload, 2_000, 3_000, 2);
        assert_eq!(report.ops, 3_000);
        assert!(report.gets > 1_000);
        assert!(report.hit_ratio() > 0.2, "hit ratio {}", report.hit_ratio());
        assert!(report.mops_per_min() > 0.0);
        assert!(report.wa >= 1.0);
    }
}
