//! Open-loop latency driver over the cache server.
//!
//! The closed-loop drivers ([`crate::mt`], [`crate::runner`]) never let
//! more requests exist than worker threads, so their latency numbers
//! hide the thing production tails are made of: *queueing*. This driver
//! measures it the standard way — a Poisson arrival process at a
//! configurable **offered rate**, independent of how fast the server is
//! answering, with each request's latency measured from its *scheduled
//! arrival time*. A server that stalls does not pause the arrival
//! process, so the stall's cost lands on every queued request
//! (coordinated omission handled by construction).
//!
//! Sweeping the offered rate traces the throughput-vs-p99 curve whose
//! knee is the server's usable capacity; past the knee, the bounded
//! shard queues shed with typed BUSY replies instead of letting p99 run
//! away — the shed fraction is reported alongside the tail.
//!
//! What the clock measures: **wall time through the real server stack**
//! (frame codec, connection reader, shard queue, engine compute,
//! reply write). The engine's *simulated* device time still shapes
//! behavior (it drives eviction, GC, and flush scheduling) but does not
//! consume wall time — the closed-loop artifacts carry the device-time
//! story; this artifact carries the server's queueing story.

use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use sim::LatencyHistogram;
use workload::Zipf;
use zns_cache::SchemeCache;
use zns_cache_server::wire::{Reply, Request};
use zns_cache_server::{BindAddr, CacheServer, Client, ServerConfig, ServerStatsSnapshot};

/// One open-loop measurement point.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Offered arrival rate, requests per wall-clock second.
    pub offered_rate: f64,
    /// Scheduled requests at this point (sets the measurement window:
    /// `requests / offered_rate` seconds).
    pub requests: u64,
    /// Closed-loop warmup sets issued directly against the engine before
    /// the server starts (fills the cache to steady state).
    pub warmup_sets: u64,
    /// Distinct keys.
    pub keys: u64,
    /// Zipfian skew.
    pub zipf: f64,
    /// Value size in bytes.
    pub value_len: usize,
    /// Fraction of requests that are GETs; the rest are SETs.
    pub get_ratio: f64,
    /// RNG seed (schedule and key sequence).
    pub seed: u64,
    /// Server shard loops.
    pub shards: usize,
    /// Bounded depth of each shard queue.
    pub queue_capacity: usize,
}

impl OpenLoopConfig {
    /// The standard sweep workload at `offered_rate` for roughly
    /// `secs` seconds.
    pub fn sweep_point(offered_rate: f64, secs: f64) -> Self {
        OpenLoopConfig {
            offered_rate,
            requests: (offered_rate * secs).max(1.0) as u64,
            warmup_sets: 6_000,
            keys: 12_000,
            zipf: 0.9,
            value_len: 4096,
            get_ratio: 0.9,
            seed: 11,
            shards: 4,
            queue_capacity: 64,
        }
    }
}

/// Merged result of one open-loop point.
#[derive(Debug)]
pub struct OpenLoopReport {
    /// Scheme label.
    pub scheme: String,
    /// Offered rate (requests per second).
    pub offered_rate: f64,
    /// Requests scheduled (== sent).
    pub scheduled: u64,
    /// Requests served (any non-BUSY, non-error reply).
    pub served: u64,
    /// Requests shed with a typed BUSY.
    pub busy: u64,
    /// Typed error replies.
    pub errors: u64,
    /// GETs answered with a value.
    pub hits: u64,
    /// Wall time from the first scheduled arrival to the last reply.
    pub wall: Duration,
    /// Latency of *served* requests, measured from scheduled arrival to
    /// reply receipt (wall nanoseconds).
    pub latency: LatencyHistogram,
    /// The server's own counters at the end of the point — the batching
    /// amortization (frames/read, jobs/dispatch, replies/flush) and
    /// copy/alloc gauges behind the knee curve.
    pub stats: ServerStatsSnapshot,
}

impl OpenLoopReport {
    /// Served requests per wall second — the achieved (goodput) side of
    /// the knee curve.
    pub fn achieved_rate(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.served as f64 / secs
        }
    }

    /// Fraction of scheduled requests shed with BUSY.
    pub fn shed_fraction(&self) -> f64 {
        if self.scheduled == 0 {
            0.0
        } else {
            self.busy as f64 / self.scheduled as f64
        }
    }
}

fn key_bytes(id: u64) -> [u8; 12] {
    let mut k = *b"obj-00000000";
    let mut v = id;
    for slot in (4..12).rev() {
        k[slot] = b'0' + (v % 10) as u8;
        v /= 10;
    }
    k
}

/// Runs one open-loop point against `sc` through a loopback TCP server.
///
/// # Panics
///
/// Panics on warmup cache errors, server bind/connect failures, or a
/// reply stream that ends before every scheduled request is answered —
/// an open-loop point with missing replies is not a measurement.
pub fn run_open_loop(sc: &SchemeCache, cfg: &OpenLoopConfig) -> OpenLoopReport {
    // Closed-loop warm directly on the engine: steady state before the
    // first scheduled arrival.
    let zipf = Zipf::new(cfg.keys.max(1), cfg.zipf);
    let value = vec![0xC3u8; cfg.value_len];
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = sim::Nanos::ZERO;
    for _ in 0..cfg.warmup_sets {
        let key = key_bytes(zipf.sample(&mut rng));
        t = sc.cache.set(&key, &value, t).expect("warmup set");
    }
    sc.cache.drain_flushes(t);

    // The arrival schedule: exponential inter-arrival gaps (Poisson
    // process) at the offered rate, plus each request's key and kind.
    // Generated up front so the sender's inner loop is pacing + I/O only.
    let mut sched_rng = StdRng::seed_from_u64(cfg.seed ^ 0x09E4_100F);
    let rate_per_ns = cfg.offered_rate / 1e9;
    let mut arrival_ns = 0.0f64;
    let schedule: Vec<(u64, u64, bool)> = (0..cfg.requests)
        .map(|_| {
            let u: f64 = sched_rng.gen::<f64>();
            // Inverse-CDF exponential gap; clamp u away from 1.0 so the
            // log argument stays positive.
            arrival_ns += -(1.0 - u).max(1e-12).ln() / rate_per_ns;
            (
                arrival_ns as u64,
                zipf.sample(&mut sched_rng),
                sched_rng.gen_bool(cfg.get_ratio),
            )
        })
        .collect();

    let server = CacheServer::start(
        std::sync::Arc::clone(&sc.cache),
        ServerConfig {
            shards: cfg.shards,
            queue_capacity: cfg.queue_capacity,
            ..ServerConfig::default()
        },
        BindAddr::Tcp("127.0.0.1:0".into()),
    )
    .expect("bind loopback server");
    let client = Client::connect_tcp(server.tcp_addr().expect("tcp bound")).expect("connect");
    let (mut tx, mut rx) = client.try_split().expect("split client");

    let start = Instant::now();
    let schedule_ref = &schedule;
    let value_ref = &value;
    let latency = LatencyHistogram::new();
    let (mut served, mut busy, mut errors, mut hits) = (0u64, 0u64, 0u64, 0u64);
    std::thread::scope(|s| {
        // Sender: pace the schedule. Oversleep never fakes good latency —
        // each request's latency is charged from its *scheduled* arrival,
        // so a late send surfaces as added latency, exactly as a stalled
        // load generator would in a real open-loop harness.
        s.spawn(move || {
            // Requests are appended to the client's send buffer and put
            // on the wire adaptively: whenever the sender is *ahead* of
            // schedule it flushes before pacing (no request is ever held
            // past its arrival time), and whenever it falls behind, the
            // backlog rides out in one write syscall — at load, that
            // batching is what keeps the arrival process honest instead
            // of throttling on per-request syscalls.
            const FLUSH_BYTES: usize = 32 * 1024;
            for (i, &(at_ns, key_id, is_get)) in schedule_ref.iter().enumerate() {
                let due = Duration::from_nanos(at_ns);
                // Coarse sleep to well short of the deadline, then a
                // yield loop for the remainder: plain `sleep(due - now)`
                // oversleeps by the host timer quantum (measured ~1-2 ms
                // here), which at low offered rates dominated every
                // request's open-loop latency. The margin is deliberately
                // wider than the quantum; sub-margin gaps pace purely by
                // yielding. Yielding (not spinning) keeps the core
                // available to the server threads on a single-core host.
                const SLEEP_MARGIN: Duration = Duration::from_millis(5);
                let now = start.elapsed();
                if due > now && tx.buffered() > 0 && tx.flush().is_err() {
                    return; // server gone; the receiver will notice
                }
                if due > now + SLEEP_MARGIN {
                    std::thread::sleep(due - now - SLEEP_MARGIN);
                }
                while start.elapsed() < due {
                    std::thread::yield_now();
                }
                let id = i as u64;
                let key = key_bytes(key_id).to_vec();
                let req = if is_get {
                    Request::Get { id, key }
                } else {
                    Request::Set { id, key, value: value_ref.clone() }
                };
                tx.send_buffered(&req);
                if tx.buffered() >= FLUSH_BYTES && tx.flush().is_err() {
                    return;
                }
            }
            let _ = tx.flush();
        });
        // Receiver: every request gets exactly one reply; latency from
        // scheduled arrival to receipt.
        for _ in 0..schedule_ref.len() {
            let reply = rx.recv().expect("reply stream ended early");
            let now_ns = start.elapsed().as_nanos() as u64;
            let id = reply.id() as usize;
            let at_ns = schedule_ref[id].0;
            match reply {
                Reply::Busy { .. } => busy += 1,
                Reply::Error { .. } => errors += 1,
                other => {
                    if matches!(other, Reply::Value { .. }) {
                        hits += 1;
                    }
                    served += 1;
                    latency.record(sim::Nanos::from_nanos(now_ns.saturating_sub(at_ns)));
                }
            }
        }
    });
    let wall = start.elapsed();
    let stats = server.stats();
    drop(server);

    OpenLoopReport {
        scheme: sc.scheme.label().to_string(),
        offered_rate: cfg.offered_rate,
        scheduled: cfg.requests,
        served,
        busy,
        errors,
        hits,
        wall,
        latency,
        stats,
    }
}

/// Renders a rate sweep as the `BENCH_latency.json` artifact
/// (hand-written JSON, like [`crate::throughput_json`]).
///
/// `runs` holds one entry per (scheme, offered-rate) point, in sweep
/// order; points of one scheme are grouped into its knee curve.
pub fn latency_json(cfg: &OpenLoopConfig, runs: &[OpenLoopReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"workload\": {{\"zipf\": {}, \"value_len\": {}, \"get_ratio\": {}, \"keys\": {}, \"arrivals\": \"poisson\"}},\n",
        cfg.zipf, cfg.value_len, cfg.get_ratio, cfg.keys
    ));
    out.push_str(&format!(
        "  \"server\": {{\"shards\": {}, \"queue_capacity\": {}}},\n",
        cfg.shards, cfg.queue_capacity
    ));
    out.push_str("  \"schemes\": {\n");
    let mut schemes: Vec<&str> = Vec::new();
    for r in runs {
        if !schemes.contains(&r.scheme.as_str()) {
            schemes.push(&r.scheme);
        }
    }
    for (si, scheme) in schemes.iter().enumerate() {
        let of_scheme: Vec<&OpenLoopReport> = runs.iter().filter(|r| r.scheme == *scheme).collect();
        out.push_str(&format!("    \"{scheme}\": [\n"));
        for (ri, r) in of_scheme.iter().enumerate() {
            let buckets = |b: &[u64]| {
                b.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
            };
            out.push_str(&format!(
                "      {{\"offered_per_sec\": {:.0}, \"achieved_per_sec\": {:.1}, \"served\": {}, \"busy\": {}, \"errors\": {}, \"shed_fraction\": {:.4}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"frames_per_read\": {:.2}, \"jobs_per_dispatch\": {:.2}, \"replies_per_flush\": {:.2}, \"reply_allocs\": {}, \"read_batch_hist\": [{}], \"flush_batch_hist\": [{}]}}{}\n",
                r.offered_rate,
                r.achieved_rate(),
                r.served,
                r.busy,
                r.errors,
                r.shed_fraction(),
                r.latency.percentile(50.0).as_nanos() as f64 / 1e3,
                r.latency.percentile(95.0).as_nanos() as f64 / 1e3,
                r.latency.percentile(99.0).as_nanos() as f64 / 1e3,
                r.stats.frames_per_read.mean(),
                r.stats.jobs_per_dispatch.mean(),
                r.stats.replies_per_flush.mean(),
                r.stats.reply_allocs,
                buckets(&r.stats.frames_per_read.buckets),
                buckets(&r.stats.replies_per_flush.buckets),
                if ri + 1 == of_scheme.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "    ]{}\n",
            if si + 1 == schemes.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::build_scheme;
    use nand::StoreKind;
    use zns_cache::backend::GcMode;
    use zns_cache::Scheme;

    fn tiny_point(rate: f64) -> OpenLoopConfig {
        OpenLoopConfig {
            offered_rate: rate,
            requests: 300,
            warmup_sets: 300,
            keys: 500,
            zipf: 0.9,
            value_len: 512,
            get_ratio: 0.9,
            seed: 11,
            shards: 2,
            queue_capacity: 32,
        }
    }

    #[test]
    fn open_loop_point_accounts_for_every_request() {
        let sc = build_scheme(Scheme::Region, 8, 6, StoreKind::Sparse, GcMode::Migrate);
        let r = run_open_loop(&sc, &tiny_point(2_000.0));
        assert_eq!(r.scheduled, 300);
        assert_eq!(r.served + r.busy + r.errors, r.scheduled);
        assert_eq!(r.errors, 0, "typed errors in a healthy run");
        assert_eq!(r.latency.count(), r.served);
        assert!(r.served > 0 && r.achieved_rate() > 0.0);
        assert!(r.hits > 0, "a warmed cache must serve hits");
        // The server's batch accounting must close against the driver's.
        assert_eq!(r.stats.requests, r.scheduled);
        assert_eq!(r.stats.frames_per_read.items, r.scheduled);
        assert_eq!(r.stats.replies_per_flush.items, r.stats.replies);
        assert!(r.stats.frames_per_read.mean() >= 1.0);
    }

    #[test]
    fn latency_json_shape() {
        let sc = build_scheme(Scheme::Zone, 8, 8, StoreKind::Sparse, GcMode::Migrate);
        let cfg = tiny_point(2_000.0);
        let r = run_open_loop(&sc, &cfg);
        let json = latency_json(&cfg, std::slice::from_ref(&r));
        assert!(json.contains("\"Zone-Cache\""));
        assert!(json.contains("\"offered_per_sec\""));
        assert!(json.contains("\"poisson\""));
        assert!(json.contains("\"frames_per_read\""));
        assert!(json.contains("\"read_batch_hist\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn schedule_is_open_loop_not_closed_loop() {
        // At an offered rate far beyond a tiny queue's capacity the
        // driver must keep sending (and the server must shed) rather than
        // throttle to the service rate: scheduled == served + busy with
        // busy > 0 is the open-loop signature.
        let sc = build_scheme(Scheme::Region, 8, 6, StoreKind::Sparse, GcMode::Migrate);
        let mut cfg = tiny_point(200_000.0);
        cfg.shards = 1;
        cfg.queue_capacity = 2;
        cfg.requests = 2_000;
        let r = run_open_loop(&sc, &cfg);
        assert_eq!(r.served + r.busy, r.scheduled);
        assert!(
            r.busy > 0,
            "2-deep queue at 200k/s offered must shed (served {}, busy {})",
            r.served,
            r.busy
        );
    }
}
