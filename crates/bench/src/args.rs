//! Minimal `--flag value` parsing for the repro binaries (the offline
//! dependency set has no CLI crate; experiments need only a handful of
//! numeric knobs).

use std::collections::HashMap;

/// Parsed command-line flags.
#[derive(Debug, Default)]
pub struct Flags {
    map: HashMap<String, String>,
}

impl Flags {
    /// Parses `--name value` pairs from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics on malformed arguments (a flag without a value), printing
    /// usage — acceptable for experiment binaries.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// As [`Flags::from_env`].
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut map = HashMap::new();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let name = arg
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, got '{arg}'"));
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("flag --{name} needs a value"));
            map.insert(name.to_string(), value);
        }
        Flags { map }
    }

    /// Integer flag with default.
    ///
    /// # Panics
    ///
    /// Panics on a non-numeric value.
    pub fn u64(&self, name: &str, default: u64) -> u64 {
        self.map
            .get(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} must be an integer")))
            .unwrap_or(default)
    }

    /// Float flag with default.
    ///
    /// # Panics
    ///
    /// Panics on a non-numeric value.
    pub fn f64(&self, name: &str, default: f64) -> f64 {
        self.map
            .get(name)
            .map(|v| v.parse().unwrap_or_else(|_| panic!("--{name} must be a number")))
            .unwrap_or(default)
    }

    /// String flag with default.
    pub fn str(&self, name: &str, default: &str) -> String {
        self.map.get(name).cloned().unwrap_or_else(|| default.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Flags {
        Flags::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_pairs_with_defaults() {
        let f = flags(&["--ops", "1000", "--er", "2.5", "--mode", "hinted"]);
        assert_eq!(f.u64("ops", 5), 1000);
        assert_eq!(f.u64("missing", 5), 5);
        assert_eq!(f.f64("er", 0.0), 2.5);
        assert_eq!(f.str("mode", "x"), "hinted");
        assert_eq!(f.str("other", "x"), "x");
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn missing_value_panics() {
        let _ = flags(&["--ops"]);
    }

    #[test]
    #[should_panic(expected = "expected --flag")]
    fn bare_word_panics() {
        let _ = flags(&["ops"]);
    }
}
