//! Reproduces **Figure 5**: the four schemes serving as the secondary
//! cache of a RocksDB-style LSM store — ops/s, flash-cache hit ratio, and
//! P50/P99 latency, for readrandom exp-range (ER) values 15 and 25.
//!
//! Paper setup (§4.2): 16 B keys / 64 B values, 100 M fill + 1 M reads,
//! 5 GiB flash cache, 32 MiB CacheLib DRAM, LSM on an HDD. Scaled 1/64:
//! zone-sized units where one paper-GiB ≈ one 16 MiB zone.
//!
//! ```text
//! cargo run --release -p zns-cache-bench --bin repro_fig5 -- \
//!     [--keys 800000] [--reads 150000] [--cache-zones 3] [--workers 4]
//! ```

use sim::Nanos;
use lsm::bench::{fill_random, read_random};
use zns_cache::Scheme;
use zns_cache_bench::{build_lsm_experiment, report, Flags, Table};

fn main() {
    let flags = Flags::from_env();
    let trace_out = zns_cache_bench::start_trace(&flags);
    let keys = flags.u64("keys", 800_000);
    let reads = flags.u64("reads", 250_000);
    let cache_zones = flags.u64("cache-zones", 3) as u32;
    let workers = flags.u64("workers", 4) as usize;
    // HDD sized at ~4x the raw data.
    let hdd_blocks = (keys * 96 * 4 / 4096).max(65_536);
    let dram = 512 * 1024;

    println!("# Figure 5 — schemes as RocksDB secondary cache (scaled 1/64)");
    println!(
        "# {keys} keys filled, {reads} readrandom ops per ER, cache {cache_zones} zones, \
         DRAM block cache {} KiB, {workers} workers\n",
        dram / 1024
    );

    let mut table = Table::new(vec![
        "ER",
        "scheme",
        "ops/s (k)",
        "flash hit ratio",
        "p50 (ms)",
        "p99 (ms)",
    ]);

    for er in [15.0, 25.0] {
        for scheme in [Scheme::Block, Scheme::File, Scheme::Zone, Scheme::Region] {
            let exp = build_lsm_experiment(scheme, cache_zones, dram, hdd_blocks);
            let t = fill_random(&exp.db, keys, 64, 42, Nanos::ZERO).expect("fill");
            let r = read_random(&exp.db, keys, reads, er, workers, 7, t).expect("readrandom");
            let flash = exp.scheme.cache.metrics();
            table.row(vec![
                format!("{er:.0}"),
                scheme.label().into(),
                report::f(r.ops_per_sec() / 1e3),
                report::f(flash.hit_ratio()),
                report::f(r.latency.percentile(50.0).as_nanos() as f64 / 1e6),
                report::f(r.latency.percentile(99.0).as_nanos() as f64 / 1e6),
            ]);
            eprintln!("done: ER={er:.0} {}", scheme.label());
        }
    }
    println!("{}", table.render());
    println!("# Paper shape: Region-Cache best ops/s (up to +21% vs Block);");
    println!("# Block-Cache lowest p50 but highest p99 (device GC);");
    println!("# File-Cache lowest p99 (up to -42% vs Block);");
    println!("# Zone-Cache lowest ops/s at this small cache size (Table 2 recovers it).");
    zns_cache_bench::finish_trace(&trace_out);
}
