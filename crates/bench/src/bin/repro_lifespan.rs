//! Extension experiment: SSD lifespan projection per scheme.
//!
//! The paper motivates ZNS caching with flash lifetime: "additional
//! in-device data movements will further decrease the lifespan of the
//! SSDs" (§1) and "zero WA can make Zone-Cache achieve a much longer SSD
//! lifespan" (§3.4). This binary quantifies that: it drives the same
//! workload volume through every scheme and reports media writes, erase
//! activity, wear imbalance, and the relative lifespan (∝ 1/WA at equal
//! workload, scaled by wear evenness).
//!
//! ```text
//! cargo run --release -p zns-cache-bench --bin repro_lifespan -- \
//!     [--zones 25] [--ops 300000] [--workers 8]
//! ```

use nand::StoreKind;
use workload::CacheBenchConfig;
use zns_cache::backend::GcMode;
use zns_cache::Scheme;
use zns_cache_bench::{build_scheme, report, run_cachebench, Flags, Table};

fn main() {
    let flags = Flags::from_env();
    let zones = flags.u64("zones", 25) as u32;
    let ops = flags.u64("ops", 300_000);
    let workers = flags.u64("workers", 8) as usize;
    let cache_zones = zones - 5;
    let keys = (zones as u64 * 16 * 1024 * 1024) * 12 / 10 / 1165;
    let warmup = keys * 2;

    println!("# Lifespan projection — equal workload volume through each scheme");
    println!("# {zones} zones, {keys} keys, {warmup} warmup + {ops} measured ops\n");

    let mut table = Table::new(vec![
        "scheme",
        "WA",
        "media GiB written",
        "blocks erased",
        "mean erases/block",
        "max erases/block",
        "relative lifespan",
    ]);

    let mut rows: Vec<(String, f64, f64, u64, f64, u32)> = Vec::new();
    for scheme in Scheme::ALL {
        let cz = if scheme == Scheme::Zone { zones } else { cache_zones };
        let sc = build_scheme(scheme, zones, cz, StoreKind::Sparse, GcMode::Migrate);
        let r = run_cachebench(
            &sc,
            CacheBenchConfig::paper_mix(keys, 42),
            warmup,
            ops,
            workers,
        );
        let nand = match (&sc.zns, &sc.ftl) {
            (Some(dev), _) => dev.nand().stats(),
            (None, Some(ssd)) => ssd.nand().stats(),
            _ => unreachable!("every scheme sits on flash"),
        };
        let (mean_erase, max_erase) = match (&sc.zns, &sc.ftl) {
            (Some(dev), _) => (dev.nand().mean_erase_count(), dev.nand().max_erase_count()),
            (None, Some(ssd)) => (ssd.nand().mean_erase_count(), ssd.nand().max_erase_count()),
            _ => unreachable!(),
        };
        rows.push((
            sc.scheme.label().to_string(),
            r.wa,
            nand.bytes_programmed() as f64 / (1 << 30) as f64,
            nand.blocks_erased,
            mean_erase,
            max_erase,
        ));
        eprintln!("done: {}", sc.scheme.label());
    }

    // Relative lifespan: normalize to the best (lowest) WA, and penalize
    // wear imbalance (the hottest block dies first).
    let best_wa = rows.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    for (label, wa, media_gib, erased, mean_erase, max_erase) in rows {
        // Wear imbalance only means anything once blocks have cycled.
        let imbalance = if mean_erase >= 1.0 {
            max_erase as f64 / mean_erase
        } else {
            1.0
        };
        let lifespan = (best_wa / wa) / imbalance.max(1.0);
        table.row(vec![
            label,
            report::f(wa),
            report::f(media_gib),
            erased.to_string(),
            report::f(mean_erase),
            max_erase.to_string(),
            report::f(lifespan),
        ]);
    }
    println!("{}", table.render());
    println!("# Paper claim: zero-WA Zone-Cache maximizes lifespan; Region-Cache");
    println!("# trades a bounded WA for flexibility; File-Cache wears fastest.");
}
