//! Reproduces **Figure 3**: time to fill the region in-memory buffer as a
//! function of region sequence number, for a zone-sized ("large", Fig. 3a)
//! region versus a CacheLib-default ("small", Fig. 3b) region.
//!
//! The paper's observation: with large regions, insertion time jumps once
//! region eviction begins (index cleanup + flush stalls serialize against
//! inserters); small regions show no such jump.
//!
//! ```text
//! cargo run --release -p zns-cache-bench --bin repro_fig3 -- \
//!     [--profile both|large|small] [--zones 16] [--regions 40]
//! ```
//!
//! Output: one `seq<TAB>fill_us` series per profile (CSV-friendly), plus a
//! summary of the before/after-eviction means.

use nand::StoreKind;
use sim::Nanos;
use workload::{value_for_key, CacheBench, CacheBenchConfig, Op};
use zns_cache::backend::GcMode;
use zns_cache::Scheme;
use zns_cache_bench::{build_scheme, Flags};

/// Runs a set-only fill and returns (seq, fill duration) per region.
fn fill_series(scheme: Scheme, zones: u32, cache_zones: u32, regions_to_record: u64) -> Vec<(u64, Nanos)> {
    let sc = build_scheme(scheme, zones, cache_zones, StoreKind::Sparse, GcMode::Migrate);
    let mut workload = CacheBench::new(CacheBenchConfig {
        num_keys: 4_000_000, // effectively no reuse: pure insertion stream
        zipf_exponent: 0.9,
        get_ratio: 0.0,
        set_ratio: 1.0,
        delete_ratio: 0.0,
        delete_uniform: true,
        seed: 7,
    });
    let mut t = Nanos::ZERO;
    let mut last_flush_at = Nanos::ZERO;
    let mut flushes_seen = 0u64;
    let mut series = Vec::new();
    let mut unique = 0u64;
    while series.len() < regions_to_record as usize {
        let (key, value) = match workload.next_op() {
            Op::Set { key, value, .. } => (key, value),
            _ => unreachable!("set-only mix"),
        };
        // Salt the key so every insert is distinct (pure fill).
        unique += 1;
        let mut k = key;
        k.extend_from_slice(&unique.to_le_bytes());
        let v = if value.is_empty() { value_for_key(unique, 0) } else { value };
        t = sc.cache.set(&k, &v, t).expect("fill set");
        let flushes = sc.cache.metrics().flushes;
        if flushes > flushes_seen {
            flushes_seen = flushes;
            series.push((flushes_seen, t - last_flush_at));
            last_flush_at = t;
        }
    }
    series
}

fn print_series(name: &str, series: &[(u64, Nanos)]) {
    println!("## {name}");
    println!("seq\tfill_us");
    for (seq, fill) in series {
        println!("{seq}\t{}", fill.as_micros());
    }
    // Jump detection: compare first-quarter mean vs last-quarter mean.
    let quarter = (series.len() / 4).max(1);
    let mean = |s: &[(u64, Nanos)]| {
        s.iter().map(|(_, f)| f.as_micros()).sum::<u64>() / s.len().max(1) as u64
    };
    let early = mean(&series[..quarter]);
    let late = mean(&series[series.len() - quarter..]);
    println!("# early mean {early} us, late mean {late} us, ratio {:.2}\n", late as f64 / early.max(1) as f64);
}

fn main() {
    let flags = Flags::from_env();
    let trace_out = zns_cache_bench::start_trace(&flags);
    let profile = flags.str("profile", "both");
    let zones = flags.u64("zones", 16) as u32;
    let regions = flags.u64("regions", 40);

    println!("# Figure 3 — region buffer fill time vs region sequence (scaled)");
    println!("# eviction begins once the cache's region budget is exhausted\n");

    if profile == "both" || profile == "large" {
        // Large = zone-sized regions (Zone-Cache): budget of `zones` regions,
        // eviction starts at seq == zones.
        let series = fill_series(Scheme::Zone, zones, zones, regions.min(4 * zones as u64));
        print_series("large regions (zone-sized, Fig. 3a)", &series);
    }
    if profile == "both" || profile == "small" {
        // Small = 256 KiB regions via the middle layer: same device budget,
        // 64x more regions; record proportionally more sequences.
        let series = fill_series(Scheme::Region, zones, zones - 2, regions * 32);
        print_series("small regions (256 KiB, Fig. 3b)", &series);
    }
    println!("# Paper shape: large-region series jumps at eviction onset;");
    println!("# small-region series stays flat.");
    zns_cache_bench::finish_trace(&trace_out);
}
