//! Thread-scaling sweep: aggregate ops/s at 1/2/4/8 threads per scheme.
//!
//! Emits `BENCH_throughput.json` so later changes have a perf trajectory
//! to compare against. Unlike the `repro_*` binaries (single-threaded
//! simulated figures), this one runs N OS threads against one shared
//! engine and reports the aggregate **simulated** throughput (total ops
//! over the slowest thread's simulated makespan — see `mt` module docs
//! for why wall-clock is not the headline on a single-core CI host).
//!
//! Two device profiles per sweep:
//!
//! * `flash` — realistic NAND timing. Curves flatten once the media is
//!   the bottleneck (~64 MB/s of programs at the scaled geometry), which
//!   is the honest end-to-end number.
//! * `fast_device` — near-instant media (the simulation analogue of the
//!   paper's nullblk runs). Isolates the engine's own scalability: this
//!   is the section the lock-striping acceptance criterion reads.
//! * `flash_dram_pressured` — realistic NAND with the DRAM budget
//!   squeezed to 8 MiB (`--pressured-dram-bytes`). The default 48 MiB
//!   budget absorbs the whole working set in the DRAM tier, making every
//!   scheme identical; this section is where per-scheme device behavior
//!   (GC, cleaning, zone appends) shows up in the numbers.
//!
//! ```text
//! bench_threads                        # full sweep -> BENCH_throughput.json
//! bench_threads --smoke 1 --threads 8  # all schemes at 1 and 8 threads,
//!                                      # asserting scaling floors; no file
//! bench_threads --floor 1              # flash Zone-Cache @8T perf floor
//! bench_threads --scheme Region-Cache --threads 8
//! bench_threads --stripe-dies 4 --append-depth 1   # narrower stripe, QD1
//! bench_threads --trace-out trace.jsonl --scheme File-Cache --threads 8
//! ```
//!
//! `--stripe-dies` (1/2/4/8, default 8) and `--append-depth` (default 16)
//! shape the zoned device: how many dies a zone stripes over and how many
//! zone-append commands a region flush keeps in flight. Both are recorded
//! in the artifact's `device` header. `--dram-bytes <n>` caps the DRAM
//! budget for the whole run (0 disables the DRAM tier).
//!
//! `--trace-out <file.jsonl>` enables the event tracer for the whole
//! sweep and dumps the merged timeline (zone resets, cleaner passes,
//! seals, evictions — see `zns_cache::trace`) as JSONL on exit.

use zns_cache::backend::GcMode;
use zns_cache::Scheme;
use zns_cache_bench::{
    build_scheme_on, run_mt, throughput_json, DeviceProfile, Flags, MtConfig, MtReport,
};

const DEVICE_ZONES: u32 = 8;

fn scheme_cache_zones(scheme: Scheme) -> u32 {
    // Zone-Cache uses the whole device; the others leave OP (§4.1).
    match scheme {
        Scheme::Zone => DEVICE_ZONES,
        // The f2fs cleaner's 2-zone free floor is 8% of the paper's
        // 25-zone budget but 25% of this sweep's 8-zone device; at 6
        // cache zones the floor would eat the whole reserve and
        // foreground cleaning thrashes (~50x WA). One extra OP zone
        // restores a healthy dead-block slack at this scale.
        Scheme::File => DEVICE_ZONES - 3,
        _ => DEVICE_ZONES - 2,
    }
}

fn run_one(scheme: Scheme, cfg: &MtConfig, profile: DeviceProfile, label: &str) -> MtReport {
    let sc = build_scheme_on(profile, scheme, scheme_cache_zones(scheme), GcMode::Migrate);
    let report = run_mt(&sc, cfg);
    println!(
        "{:<20} {:<14} threads={} ops/s={:>10.0} hit={:.3} wa={:.2} p50={}us p99={}us stale={} inline_ev={} maint_ev={}",
        label,
        report.scheme,
        report.threads,
        report.ops_per_sec(),
        report.hit_ratio(),
        report.write_amplification,
        report.get_latency.percentile(50.0).as_micros(),
        report.get_latency.percentile(99.0).as_micros(),
        report.stale_reads,
        report.inline_evictions,
        report.maintainer_evictions,
    );
    report
}

fn main() {
    let flags = Flags::from_env();
    let smoke = flags.u64("smoke", 0) != 0;
    let floor = flags.u64("floor", 0) != 0;
    let out = flags.str("out", "BENCH_throughput.json");
    let trace_out = zns_cache_bench::start_trace(&flags);
    let mut profile = DeviceProfile::sparse(DEVICE_ZONES)
        .with_stripe_dies(flags.u64("stripe-dies", 8) as u32)
        .with_append_depth(flags.u64("append-depth", 16) as usize);
    // `--dram-bytes` caps the per-scheme DRAM budget (0 disables the
    // DRAM tier). u64::MAX is the "not given" sentinel so 0 stays
    // expressible.
    let dram_bytes = flags.u64("dram-bytes", u64::MAX);
    if dram_bytes != u64::MAX {
        profile = profile.with_dram_budget(dram_bytes as usize);
    }

    if floor {
        // CI perf floor: the async flush pipeline must hold flash
        // Zone-Cache at (or near) the media bound at 8 threads, with get
        // tail latency in microseconds — the regression gate for the
        // submit/complete I/O core. Realistic NAND timing on purpose:
        // this is the end-to-end number the paper's Fig. 3 argument
        // hinges on.
        let threads = flags.u64("threads", 8) as usize;
        let report = run_one(Scheme::Zone, &MtConfig::throughput(threads), profile, "flash");
        let ops = report.ops_per_sec();
        let p99 = report.get_latency.percentile(99.0);
        assert!(
            ops >= 110_000.0,
            "flash Zone-Cache @{threads}T fell to {ops:.0} ops/s (floor: 110k)"
        );
        assert!(
            p99 < sim::Nanos::from_micros(100),
            "flash Zone-Cache @{threads}T get p99 ballooned to {}ns (floor: <100us)",
            p99.as_nanos()
        );
        zns_cache_bench::finish_trace(&trace_out);
        println!("perf floor OK: {ops:.0} ops/s, get p99 {}us", p99.as_micros());
        return;
    }

    if smoke {
        // CI gate: every scheme must complete a short mixed run at 1 and
        // N threads, stay self-consistent, offer the same workload at
        // both thread counts, and keep at least half its single-thread
        // throughput — the floor that catches a multi-thread collapse
        // (File-Cache once dropped 108.6k -> 4.7k ops/s at >= 4 threads).
        // Fast media keeps the gate seconds-scale.
        let threads = flags.u64("threads", 8) as usize;
        for scheme in Scheme::ALL {
            let base = run_one(scheme, &MtConfig::smoke(1), profile.fast(), "fast_device");
            let multi = run_one(scheme, &MtConfig::smoke(threads), profile.fast(), "fast_device");
            assert_eq!(multi.ops, MtConfig::smoke(threads).ops);
            assert!(multi.hits <= multi.gets);
            assert_eq!(
                base.gets, multi.gets,
                "{scheme}: offered workload changed with thread count"
            );
            assert!(
                (base.hit_ratio() - multi.hit_ratio()).abs() < 0.02,
                "{scheme}: hit ratio drifted with threads: {:.4} -> {:.4}",
                base.hit_ratio(),
                multi.hit_ratio()
            );
            assert!(
                multi.ops_per_sec() >= 0.5 * base.ops_per_sec(),
                "{scheme}: {threads}-thread throughput {:.0} ops/s fell below half \
                 of single-thread {:.0} ops/s",
                multi.ops_per_sec(),
                base.ops_per_sec()
            );
            // Wall-clock sanity: the barriered window (started at the
            // post-setup barrier, stopped at last-worker-done) must not
            // collapse as threads are added. On a single-core host
            // wall-clock *scaling* is impossible, so this is a
            // non-collapse floor, not a monotonicity requirement — it
            // catches the class of bug where setup cost (histogram
            // allocation, spawn overhead) leaks back into the timed
            // window and grows with the thread count.
            assert!(
                multi.wall_ops_per_sec() >= 0.4 * base.wall_ops_per_sec(),
                "{scheme}: wall ops/s collapsed with threads: {:.0} at 1T -> {:.0} at {threads}T",
                base.wall_ops_per_sec(),
                multi.wall_ops_per_sec()
            );
        }
        zns_cache_bench::finish_trace(&trace_out);
        println!("smoke OK");
        return;
    }

    let scheme_filter = flags.str("scheme", "");
    let thread_counts: Vec<usize> = match flags.u64("threads", 0) {
        0 => vec![1, 2, 4, 8],
        n => vec![n as usize],
    };
    let mut template = MtConfig::throughput(1);
    template.ops = flags.u64("ops", template.ops);
    template.keys = flags.u64("keys", template.keys);
    template.zipf = flags.f64("zipf", template.zipf);
    template.get_ratio = flags.f64("get-ratio", template.get_ratio);

    // Three sections: realistic flash, near-instant media, and flash
    // under a pressured DRAM budget. The default 48 MiB budget absorbs
    // the whole 12k x 4 KiB working set in the DRAM tier, which made
    // every scheme's row byte-identical (~97% DRAM hits; the device never
    // spoke). The pressured section squeezes the budget to 8 MiB so most
    // gets reach flash and the schemes separate.
    let pressured = profile.with_dram_budget(
        flags.u64("pressured-dram-bytes", 8 * 1024 * 1024) as usize,
    );
    let sections: [(&str, DeviceProfile); 3] = [
        ("flash", profile),
        ("fast_device", profile.fast()),
        ("flash_dram_pressured", pressured),
    ];
    let mut section_runs: Vec<Vec<MtReport>> = vec![Vec::new(), Vec::new(), Vec::new()];
    for (si, (label, section_profile)) in sections.iter().enumerate() {
        for scheme in Scheme::ALL {
            if !scheme_filter.is_empty() && scheme.label() != scheme_filter {
                continue;
            }
            for &threads in &thread_counts {
                let cfg = MtConfig {
                    threads,
                    ..template.clone()
                };
                section_runs[si].push(run_one(scheme, &cfg, *section_profile, label));
            }
        }
    }

    let json = throughput_json(
        &template,
        &profile,
        &[
            ("flash", &section_runs[0][..]),
            ("fast_device", &section_runs[1][..]),
            ("flash_dram_pressured", &section_runs[2][..]),
        ],
    );
    std::fs::write(&out, &json).expect("write throughput artifact");
    println!("wrote {out}");
    zns_cache_bench::finish_trace(&trace_out);
}
