//! Thread-scaling sweep: aggregate ops/s at 1/2/4/8 threads per scheme.
//!
//! Emits `BENCH_throughput.json` so later changes have a perf trajectory
//! to compare against. Unlike the `repro_*` binaries (single-threaded
//! simulated figures), this one runs N OS threads against one shared
//! engine and reports the aggregate **simulated** throughput (total ops
//! over the slowest thread's simulated makespan — see `mt` module docs
//! for why wall-clock is not the headline on a single-core CI host).
//!
//! Two device profiles per sweep:
//!
//! * `flash` — realistic NAND timing. Curves flatten once the media is
//!   the bottleneck (~64 MB/s of programs at the scaled geometry), which
//!   is the honest end-to-end number.
//! * `fast_device` — near-instant media (the simulation analogue of the
//!   paper's nullblk runs). Isolates the engine's own scalability: this
//!   is the section the lock-striping acceptance criterion reads.
//!
//! ```text
//! bench_threads                      # full sweep -> BENCH_throughput.json
//! bench_threads --smoke 1 --threads 4  # one quick Zone-Cache run, no file
//! bench_threads --scheme Region-Cache --threads 8
//! ```

use zns_cache::backend::GcMode;
use zns_cache::Scheme;
use zns_cache_bench::{
    build_scheme_on, run_mt, throughput_json, DeviceProfile, Flags, MtConfig, MtReport,
};

const DEVICE_ZONES: u32 = 8;

fn scheme_cache_zones(scheme: Scheme) -> u32 {
    // Zone-Cache uses the whole device; the others leave OP (§4.1).
    match scheme {
        Scheme::Zone => DEVICE_ZONES,
        // The f2fs cleaner's 2-zone free floor is 8% of the paper's
        // 25-zone budget but 25% of this sweep's 8-zone device; at 6
        // cache zones the floor would eat the whole reserve and
        // foreground cleaning thrashes (~50x WA). One extra OP zone
        // restores a healthy dead-block slack at this scale.
        Scheme::File => DEVICE_ZONES - 3,
        _ => DEVICE_ZONES - 2,
    }
}

fn run_one(scheme: Scheme, cfg: &MtConfig, fast: bool) -> MtReport {
    let mut profile = DeviceProfile::sparse(DEVICE_ZONES);
    if fast {
        profile = profile.fast();
    }
    let sc = build_scheme_on(profile, scheme, scheme_cache_zones(scheme), GcMode::Migrate);
    let report = run_mt(&sc, cfg);
    println!(
        "{:<11} {:<14} threads={} ops/s={:>10.0} hit={:.3} p50={}us p99={}us stale={} inline_ev={} maint_ev={}",
        if fast { "fast_device" } else { "flash" },
        report.scheme,
        report.threads,
        report.ops_per_sec(),
        report.hit_ratio(),
        report.get_latency.percentile(50.0).as_micros(),
        report.get_latency.percentile(99.0).as_micros(),
        report.stale_reads,
        report.inline_evictions,
        report.maintainer_evictions,
    );
    report
}

fn main() {
    let flags = Flags::from_env();
    let smoke = flags.u64("smoke", 0) != 0;
    let out = flags.str("out", "BENCH_throughput.json");

    if smoke {
        // CI gate: one short mixed run on the flagship scheme must complete
        // and stay self-consistent. Fast media keeps the gate seconds-scale.
        let threads = flags.u64("threads", 4) as usize;
        let cfg = MtConfig::smoke(threads);
        let report = run_one(Scheme::Zone, &cfg, true);
        assert_eq!(report.ops, cfg.threads as u64 * cfg.ops_per_thread);
        assert!(report.hits <= report.gets);
        println!("smoke OK");
        return;
    }

    let scheme_filter = flags.str("scheme", "");
    let thread_counts: Vec<usize> = match flags.u64("threads", 0) {
        0 => vec![1, 2, 4, 8],
        n => vec![n as usize],
    };
    let mut template = MtConfig::throughput(1);
    template.ops_per_thread = flags.u64("ops", template.ops_per_thread);
    template.keys = flags.u64("keys", template.keys);
    template.zipf = flags.f64("zipf", template.zipf);
    template.get_ratio = flags.f64("get-ratio", template.get_ratio);

    let mut flash_runs = Vec::new();
    let mut fast_runs = Vec::new();
    for fast in [false, true] {
        for scheme in Scheme::ALL {
            if !scheme_filter.is_empty() && scheme.label() != scheme_filter {
                continue;
            }
            for &threads in &thread_counts {
                let cfg = MtConfig {
                    threads,
                    ..template.clone()
                };
                let report = run_one(scheme, &cfg, fast);
                if fast {
                    fast_runs.push(report);
                } else {
                    flash_runs.push(report);
                }
            }
        }
    }

    let json = throughput_json(
        &template,
        &[("flash", &flash_runs[..]), ("fast_device", &fast_runs[..])],
    );
    std::fs::write(&out, &json).expect("write throughput artifact");
    println!("wrote {out}");
}
