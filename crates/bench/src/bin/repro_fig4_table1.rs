//! Reproduces **Figure 4** (throughput and hit ratio under different OP
//! ratios) and **Table 1** (write-amplification factor under those OP
//! ratios).
//!
//! Paper setup (§4.1): a fixed device budget (220 zones, scaled down by
//! default here for the single-core host) with OP ratios 10%, 15% and 20%
//! for File-Cache and Region-Cache; Zone-Cache always runs at 0% OP.
//!
//! ```text
//! cargo run --release -p zns-cache-bench --bin repro_fig4_table1 -- \
//!     [--zones 40] [--ops 300000] [--workers 4]
//! ```

use nand::StoreKind;
use workload::CacheBenchConfig;
use zns_cache::backend::GcMode;
use zns_cache::Scheme;
use zns_cache_bench::{build_scheme, report, run_cachebench, Flags, Table};

fn main() {
    let flags = Flags::from_env();
    let trace_out = zns_cache_bench::start_trace(&flags);
    let zones = flags.u64("zones", 40) as u32;
    let ops = flags.u64("ops", 300_000);
    let workers = flags.u64("workers", 4) as usize;

    // Working set sized against the device so OP changes bite: ~1.2x the
    // full device capacity in average-sized objects (~1165 B).
    let keys = (zones as u64 * 16 * 1024 * 1024) * 12 / 10 / 1165;
    let warmup = keys * 2;

    println!("# Figure 4 + Table 1 — OP-ratio sweep (scaled, {zones} zones)");
    println!("# {keys} keys, {warmup} warmup + {ops} measured ops per cell\n");

    let mut fig4 = Table::new(vec![
        "scheme",
        "OP",
        "throughput (Mops/min)",
        "hit ratio",
    ]);
    let mut table1 = Table::new(vec!["scheme", "10%", "15%", "20%"]);
    let mut wa_rows: Vec<(String, Vec<f64>)> = Vec::new();

    // Zone-Cache: always 0% OP (one row in Fig. 4, labelled "None").
    {
        let sc = build_scheme(Scheme::Zone, zones, zones, StoreKind::Sparse, GcMode::Migrate);
        let r = run_cachebench(&sc, CacheBenchConfig::paper_mix(keys, 42), warmup, ops, workers);
        fig4.row(vec![
            "Zone-Cache".into(),
            "None".into(),
            report::f(r.mops_per_min()),
            report::f(r.hit_ratio()),
        ]);
        eprintln!("done: Zone-Cache (WA {:.3})", r.wa);
    }

    for scheme in [Scheme::File, Scheme::Region] {
        let mut was = Vec::new();
        for op_pct in [10u32, 15, 20] {
            let cache_zones = zones - (zones * op_pct).div_ceil(100);
            let sc = build_scheme(scheme, zones, cache_zones, StoreKind::Sparse, GcMode::Migrate);
            let r =
                run_cachebench(&sc, CacheBenchConfig::paper_mix(keys, 42), warmup, ops, workers);
            fig4.row(vec![
                scheme.label().into(),
                format!("{op_pct}%"),
                report::f(r.mops_per_min()),
                report::f(r.hit_ratio()),
            ]);
            was.push(r.wa);
            eprintln!("done: {} @ {}% OP (WA {:.3})", scheme.label(), op_pct, r.wa);
        }
        wa_rows.push((scheme.label().to_string(), was));
    }

    for (label, was) in &wa_rows {
        table1.row(vec![
            label.clone(),
            report::f(was[0]),
            report::f(was[1]),
            report::f(was[2]),
        ]);
    }

    println!("## Figure 4 — throughput and hit ratio\n{}", fig4.render());
    println!("## Table 1 — WA factor under different OP ratios\n{}", table1.render());
    println!("# Paper shape: larger OP -> higher throughput, lower hit ratio,");
    println!("# lower WA (paper: Region 1.39/1.30/1.15, File 1.25/1.19/1.11);");
    println!("# Zone-Cache is GC-free with WA == 1 always.");
    zns_cache_bench::finish_trace(&trace_out);
}
