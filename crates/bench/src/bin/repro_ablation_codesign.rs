//! Ablation for the paper's §3.4 discussion: co-designing cache management
//! with zone GC. The middle layer's GC either migrates every valid region
//! (`migrate`, the paper's evaluated design) or consults cache-temperature
//! hints and drops cold regions instead (`hinted`, the co-design the paper
//! proposes as future work: "not all the valid regions are needed to be
//! migrated ... the GC overhead can be effectively minimized without
//! explicitly sacrificing the cache hit ratio").
//!
//! ```text
//! cargo run --release -p zns-cache-bench --bin repro_ablation_codesign -- \
//!     [--zones 30] [--ops 300000] [--cutoff 0.3] [--workers 4]
//! ```

use nand::StoreKind;
use workload::CacheBenchConfig;
use zns_cache::backend::GcMode;
use zns_cache::Scheme;
use zns_cache_bench::{build_scheme, report, run_cachebench, Flags, Table};

fn main() {
    let flags = Flags::from_env();
    let zones = flags.u64("zones", 30) as u32;
    let ops = flags.u64("ops", 300_000);
    let cutoff = flags.f64("cutoff", 0.3);
    let workers = flags.u64("workers", 4) as usize;
    // 10% OP: the WA-heaviest point of Table 1, where co-design helps most.
    let cache_zones = zones - zones.div_ceil(10);
    let keys = (zones as u64 * 16 * 1024 * 1024) * 12 / 10 / 1165;
    let warmup = keys * 2;

    println!("# §3.4 ablation — Region-Cache GC: migrate vs hinted (cutoff {cutoff})");
    println!("# {zones} zones, 10% OP, {keys} keys, {warmup} warmup + {ops} ops\n");

    let mut table = Table::new(vec![
        "GC mode",
        "throughput (Mops/min)",
        "hit ratio",
        "WA",
        "GC migrated",
        "GC dropped",
    ]);

    for (name, mode) in [
        ("migrate", GcMode::Migrate),
        ("hinted", GcMode::Hinted { cold_cutoff: cutoff }),
    ] {
        let sc = build_scheme(Scheme::Region, zones, cache_zones, StoreKind::Sparse, mode);
        let r = run_cachebench(&sc, CacheBenchConfig::paper_mix(keys, 42), warmup, ops, workers);
        let middle = sc.middle.as_ref().expect("region scheme").stats();
        table.row(vec![
            name.into(),
            report::f(r.mops_per_min()),
            report::f(r.hit_ratio()),
            report::f(r.wa),
            middle.gc_migrated_regions.to_string(),
            middle.gc_dropped_regions.to_string(),
        ]);
        eprintln!("done: {name}");
    }
    println!("{}", table.render());
    println!("# Expected: hinted GC trades a small hit-ratio loss for WA ~ 1");
    println!("# and higher throughput — the co-design headroom of §3.4.");
}
