//! Reproduces **Table 2**: Zone-Cache under RocksDB with growing cache
//! sizes (paper: 4–8 GiB at ER = 25), showing that throughput and hit
//! ratio recover as Zone-Cache is granted the larger capacity its zero-OP
//! design affords.
//!
//! Scaled 1/64: one paper-GiB ≈ one 16 MiB zone, so the sweep runs 4–8
//! zones.
//!
//! ```text
//! cargo run --release -p zns-cache-bench --bin repro_table2 -- \
//!     [--keys 800000] [--reads 120000] [--workers 4]
//! ```

use lsm::bench::{fill_random, read_random};
use sim::Nanos;
use zns_cache::Scheme;
use zns_cache_bench::{build_lsm_experiment, report, Flags, Table};

fn main() {
    let flags = Flags::from_env();
    let keys = flags.u64("keys", 800_000);
    let reads = flags.u64("reads", 120_000);
    let workers = flags.u64("workers", 4) as usize;
    let hdd_blocks = (keys * 96 * 4 / 4096).max(65_536);
    let dram = 512 * 1024;

    println!("# Table 2 — Zone-Cache cache-size sweep under RocksDB, ER=25 (scaled)");
    println!("# {keys} keys, {reads} reads per size, {workers} workers\n");

    let mut table = Table::new(vec![
        "cache size (zones ~ paper GiB)",
        "throughput (k ops/s)",
        "flash hit ratio (%)",
    ]);

    for zones in [4u32, 5, 6, 7, 8] {
        // Zone-Cache uses the whole device: device == cache.
        let exp = build_lsm_experiment(Scheme::Zone, zones, dram, hdd_blocks);
        let t = fill_random(&exp.db, keys, 64, 42, Nanos::ZERO).expect("fill");
        let r = read_random(&exp.db, keys, reads, 25.0, workers, 7, t).expect("readrandom");
        let flash = exp.scheme.cache.metrics();
        table.row(vec![
            format!("{zones}"),
            report::f(r.ops_per_sec() / 1e3),
            report::f(flash.hit_ratio() * 100.0),
        ]);
        eprintln!("done: {zones} zones");
    }
    println!("{}", table.render());
    println!("# Paper shape: throughput 1.869 -> 4.100 k ops and hit ratio");
    println!("# 86.95% -> 94.40% as the cache grows 4 GiB -> 8 GiB.");
}
