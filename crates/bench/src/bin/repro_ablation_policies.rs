//! Ablation of the cache-policy choices DESIGN.md calls out: region
//! eviction policy (LRU — the paper's setting — vs FIFO) and flash
//! admission (admit-all vs probabilistic), on the Region-Cache scheme.
//!
//! ```text
//! cargo run --release -p zns-cache-bench --bin repro_ablation_policies -- \
//!     [--zones 25] [--ops 300000] [--workers 4]
//! ```

use workload::CacheBenchConfig;
use zns_cache::backend::GcMode;
use zns_cache::{Admission, EvictionPolicy, Scheme, SchemeCache};
use zns_cache_bench::profile::{experiment_cache_config, middle_config, REGION_BYTES, DeviceProfile};
use zns_cache_bench::{report, run_cachebench, Flags, Table};

fn main() {
    let flags = Flags::from_env();
    let zones = flags.u64("zones", 25) as u32;
    let ops = flags.u64("ops", 300_000);
    let workers = flags.u64("workers", 4) as usize;
    let cache_zones = zones - 5;
    let keys = (zones as u64 * 16 * 1024 * 1024) * 12 / 10 / 1165;
    let warmup = keys * 2;

    println!("# Policy ablation — Region-Cache eviction and admission");
    println!("# {zones} zones, {cache_zones}-zone cache, {keys} keys, {warmup} warmup + {ops} ops\n");

    let mut table = Table::new(vec![
        "eviction",
        "admission",
        "throughput (Mops/min)",
        "hit ratio",
        "WA",
    ]);

    let cases = [
        (EvictionPolicy::Lru, Admission::Always, "always", 0.0),
        (EvictionPolicy::Fifo, Admission::Always, "always", 0.0),
        (
            EvictionPolicy::Lru,
            Admission::Random { probability: 0.7 },
            "random(0.7)",
            0.0,
        ),
        (EvictionPolicy::Lru, Admission::Always, "always+reinsert(0.2)", 0.2),
    ];
    for (eviction, admission, admission_label, reinsert) in cases {
        let profile = DeviceProfile::sparse(zones);
        let mut config = experiment_cache_config(REGION_BYTES);
        config.eviction = eviction;
        config.admission = admission;
        config.reinsertion_fraction = reinsert;
        let sc = SchemeCache::region(
            profile.zns(),
            middle_config(zones, cache_zones as u64 * 16 * 1024 * 1024, GcMode::Migrate),
            config,
        )
        .expect("region scheme");
        assert_eq!(sc.scheme, Scheme::Region);
        let r = run_cachebench(&sc, CacheBenchConfig::paper_mix(keys, 42), warmup, ops, workers);
        table.row(vec![
            format!("{eviction:?}"),
            admission_label.into(),
            report::f(r.mops_per_min()),
            report::f(r.hit_ratio()),
            report::f(r.wa),
        ]);
        eprintln!("done: {eviction:?}/{admission_label}");
    }
    println!("{}", table.render());
    println!("# Expected: LRU >= FIFO on hit ratio; random admission trades");
    println!("# hit ratio for fewer flash writes (endurance).");
}
