//! Open-loop latency sweep: throughput-vs-p99 knee curves per scheme.
//!
//! Each point starts a loopback TCP [`zns_cache_server::CacheServer`]
//! over one scheme, warms the cache, then offers Poisson arrivals at a
//! fixed rate and measures every request's wall latency from its
//! *scheduled* arrival (open-loop: a slow server does not slow the
//! arrival process — see the `openloop` module docs). Sweeping the rate
//! per scheme writes `BENCH_latency.json`, the artifact EXPERIMENTS.md's
//! knee-curve section explains how to read.
//!
//! ```text
//! bench_latency                               # full sweep -> BENCH_latency.json
//!                                             # (top rate sits past the knee)
//! bench_latency --rates 2000,8000 --secs 1    # custom sweep, shorter window
//! bench_latency --scheme Zone-Cache           # one scheme's curve
//! bench_latency --gate 1                      # CI loopback gate: one fixed
//!                                             # rate, p99 + accounting floors
//! ```
//!
//! The gate mode is wall-clock sensitive by nature (a loaded CI host
//! inflates tails), so its thresholds are deliberately loose — it exists
//! to catch order-of-magnitude regressions and accounting bugs (lost
//! replies, unshed overload), not percent-level drift.

use zns_cache::backend::GcMode;
use zns_cache::Scheme;
use zns_cache_bench::{
    build_scheme_on, latency_json, run_open_loop, DeviceProfile, Flags, OpenLoopConfig,
};

const DEVICE_ZONES: u32 = 8;

fn scheme_cache_zones(scheme: Scheme) -> u32 {
    match scheme {
        Scheme::Zone => DEVICE_ZONES,
        Scheme::File => DEVICE_ZONES - 3,
        _ => DEVICE_ZONES - 2,
    }
}

fn run_point(scheme: Scheme, cfg: &OpenLoopConfig) -> zns_cache_bench::OpenLoopReport {
    let profile = DeviceProfile::sparse(DEVICE_ZONES);
    let sc = build_scheme_on(profile, scheme, scheme_cache_zones(scheme), GcMode::Migrate);
    let r = run_open_loop(&sc, cfg);
    println!(
        "{:<14} offered={:>7.0}/s achieved={:>7.0}/s served={} busy={} p50={:.0}us p99={:.0}us",
        r.scheme,
        r.offered_rate,
        r.achieved_rate(),
        r.served,
        r.busy,
        r.latency.percentile(50.0).as_nanos() as f64 / 1e3,
        r.latency.percentile(99.0).as_nanos() as f64 / 1e3,
    );
    r
}

fn main() {
    let flags = Flags::from_env();
    let secs = flags.f64("secs", 1.5);

    if flags.u64("gate", 0) != 0 {
        // CI loopback gate: one scheme, one modest offered rate. Asserts
        // (a) request accounting closes, (b) the server actually served
        // the offered load (low shed at a rate far under capacity), and
        // (c) p99 stays under a loose wall-clock ceiling — the bounded
        // queues' whole point is that the tail cannot run away.
        let rate = flags.f64("rate", 2_000.0);
        let r = run_point(Scheme::Zone, &OpenLoopConfig::sweep_point(rate, secs));
        assert_eq!(
            r.served + r.busy + r.errors,
            r.scheduled,
            "lost replies: {} of {} unaccounted",
            r.scheduled - r.served - r.busy - r.errors,
            r.scheduled
        );
        assert_eq!(r.errors, 0, "typed errors during the gate run");
        assert!(
            r.shed_fraction() < 0.05,
            "shed {:.1}% at {rate}/s — far under capacity, should be ~0",
            r.shed_fraction() * 100.0
        );
        let p99 = r.latency.percentile(99.0);
        assert!(
            p99 < sim::Nanos::from_millis(250),
            "loopback p99 ballooned to {}us at {rate}/s (ceiling: 250ms)",
            p99.as_micros()
        );
        println!(
            "latency gate OK: {:.0}/s offered, p99 {}us, shed {:.2}%",
            rate,
            p99.as_micros(),
            r.shed_fraction() * 100.0
        );

        // Capacity floor: offer far past the knee and require the
        // batched data path to sustain well above the pre-batching
        // capacity. The unbatched frontend kneed at ~61k/s on this host;
        // the floor is 1.5x that — loose against the ~3x the batched
        // path measures, tight against any regression to per-request
        // syscalls.
        let floor = flags.f64("floor", 92_000.0);
        let probe_rate = flags.f64("probe-rate", 400_000.0);
        let r = run_point(
            Scheme::Zone,
            &OpenLoopConfig::sweep_point(probe_rate, 60_000.0 / probe_rate),
        );
        assert_eq!(
            r.served + r.busy + r.errors,
            r.scheduled,
            "lost replies in the capacity probe"
        );
        assert!(
            r.achieved_rate() >= floor,
            "capacity regressed: {:.0}/s achieved under overload (floor {floor:.0}/s)",
            r.achieved_rate()
        );
        // Amortization must be real at load: more than one frame per
        // read syscall and more than one reply per locked write, and the
        // steady-state reply path must not allocate per request (growth
        // events stay a vanishing fraction of replies written).
        assert!(
            r.stats.frames_per_read.mean() > 1.0,
            "no read batching under overload (mean {:.2})",
            r.stats.frames_per_read.mean()
        );
        assert!(
            r.stats.replies_per_flush.mean() > 1.0,
            "no reply coalescing under overload (mean {:.2})",
            r.stats.replies_per_flush.mean()
        );
        assert!(
            r.stats.reply_allocs <= 64 + r.stats.replies / 100,
            "reply path allocates per request: {} growth events over {} replies",
            r.stats.reply_allocs,
            r.stats.replies
        );
        println!(
            "capacity gate OK: {:.0}/s achieved (floor {floor:.0}/s), frames/read {:.1}, replies/flush {:.1}, reply_allocs {}",
            r.achieved_rate(),
            r.stats.frames_per_read.mean(),
            r.stats.replies_per_flush.mean(),
            r.stats.reply_allocs
        );
        return;
    }

    let scheme_filter = flags.str("scheme", "");
    let out = flags.str("out", "BENCH_latency.json");
    let rates: Vec<f64> = flags
        // The top rate sits past the loopback stack's capacity on the CI
        // host (~300k/s with the batched data path) on purpose: the knee
        // and the shed fraction past it are the artifact's whole story.
        .str("rates", "1000,2000,4000,8000,16000,32000,64000,128000,256000,400000")
        .split(',')
        .map(|s| s.trim().parse().expect("--rates takes comma-separated numbers"))
        .collect();

    let mut runs = Vec::new();
    let mut template = OpenLoopConfig::sweep_point(0.0, secs);
    for scheme in Scheme::ALL {
        if !scheme_filter.is_empty() && scheme.label() != scheme_filter {
            continue;
        }
        for &rate in &rates {
            let cfg = OpenLoopConfig {
                offered_rate: rate,
                requests: (rate * secs).max(1.0) as u64,
                ..template.clone()
            };
            runs.push(run_point(scheme, &cfg));
            template = cfg;
        }
    }

    let json = latency_json(&template, &runs);
    std::fs::write(&out, &json).expect("write latency artifact");
    println!("wrote {out}");
}
