//! Reproduces **Figure 2**: overall throughput and hit ratio of the four
//! schemes under the CacheBench mix (50% get / 30% set / 20% delete).
//!
//! Paper setup (§4.1 Overall Comparison): 25 zones for Zone-Cache and
//! Region-Cache; Zone-Cache needs no OP so its cache is 25 zones; Block-,
//! File- and Region-Cache get a 20-zone cache (≥5 zones of OP). Scaled
//! 1/64: 16 MiB zones, 256 KiB regions.
//!
//! ```text
//! cargo run --release -p zns-cache-bench --bin repro_fig2 -- \
//!     [--zones 25] [--cache 20] [--keys 450000] [--warmup 900000] \
//!     [--ops 400000] [--workers 4]
//! ```

use nand::StoreKind;
use workload::CacheBenchConfig;
use zns_cache::backend::GcMode;
use zns_cache::Scheme;
use zns_cache_bench::{build_scheme, report, run_cachebench, Flags, Table};

fn main() {
    let flags = Flags::from_env();
    let trace_out = zns_cache_bench::start_trace(&flags);
    let zones = flags.u64("zones", 25) as u32;
    let cache_zones = flags.u64("cache", 20) as u32;
    let keys = flags.u64("keys", 450_000);
    let warmup = flags.u64("warmup", 900_000);
    let ops = flags.u64("ops", 400_000);
    let workers = flags.u64("workers", 4) as usize;

    println!("# Figure 2 — overall comparison (scaled 1/64)");
    println!(
        "# device {zones} zones x 16 MiB; cache: Zone-Cache {zones} zones, others {cache_zones}; \
         {keys} keys, {warmup} warmup + {ops} measured ops, {workers} workers\n"
    );

    let mut table = Table::new(vec![
        "scheme",
        "throughput (Mops/min)",
        "hit ratio",
        "WA",
        "get p50 (us)",
        "get p99 (us)",
    ]);

    for scheme in Scheme::ALL {
        let cz = if scheme == Scheme::Zone { zones } else { cache_zones };
        let sc = build_scheme(scheme, zones, cz, StoreKind::Sparse, GcMode::Migrate);
        let workload = CacheBenchConfig::paper_mix(keys, 42);
        let r = run_cachebench(&sc, workload, warmup, ops, workers);
        table.row(vec![
            r.scheme.clone(),
            report::f(r.mops_per_min()),
            report::f(r.hit_ratio()),
            report::f(r.wa),
            report::f(r.get_latency.percentile(50.0).as_nanos() as f64 / 1e3),
            report::f(r.get_latency.percentile(99.0).as_nanos() as f64 / 1e3),
        ]);
        eprintln!("done: {}", r.scheme);
    }
    println!("{}", table.render());
    println!("# Paper shape: hit ratio Zone > others (94.29% -> 95.08%);");
    println!("# throughput Region ~ Block > Zone > File.");
    zns_cache_bench::finish_trace(&trace_out);
}
