//! Criterion end-to-end benches: one op-mix iteration against each of the
//! four schemes at a small scale. Complements the `repro_*` binaries
//! (which measure *simulated* performance) by tracking the *host* cost of
//! driving each scheme — a regression here means experiments get slower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nand::StoreKind;
use sim::Nanos;
use workload::{CacheBench, CacheBenchConfig, Op};
use zns_cache::backend::GcMode;
use zns_cache::Scheme;
use zns_cache_bench::build_scheme;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheme_op_mix");
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                // File-Cache needs the paper's ~1.9x filesystem
                // provisioning to sustain unbounded churn.
                let (device_zones, cache_zones) = match scheme {
                    Scheme::Zone => (6, 6),
                    Scheme::File => (8, 4),
                    _ => (6, 4),
                };
                let sc =
                    build_scheme(scheme, device_zones, cache_zones, StoreKind::Sparse, GcMode::Migrate);
                let mut bench = CacheBench::new(CacheBenchConfig::paper_mix(20_000, 1));
                let mut t = Nanos::ZERO;
                b.iter(|| match bench.next_op() {
                    Op::Get { key, .. } => {
                        t = sc.cache.get(&key, t).unwrap().1;
                    }
                    Op::Set { key, value, .. } => {
                        t = sc.cache.set(&key, &value, t).unwrap();
                    }
                    Op::Delete { key, .. } => {
                        t = sc.cache.delete(&key, t).unwrap().1;
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_lsm_get(c: &mut Criterion) {
    use lsm::bench::{bench_key, fill_random};
    use lsm::{Db, DbConfig};
    let db = Db::open(DbConfig::small_test()).unwrap();
    let t = fill_random(&db, 2_000, 64, 1, Nanos::ZERO).unwrap();
    let mut i = 0u64;
    let mut t = t;
    c.bench_function("lsm_point_get", |b| {
        b.iter(|| {
            i = (i + 131) % 2_000;
            let (v, t2) = db.get(&bench_key(i), t).unwrap();
            t = t2;
            std::hint::black_box(v)
        })
    });
}

criterion_group!(
    name = schemes;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_schemes, bench_lsm_get
);
criterion_main!(schemes);
