//! Criterion micro-benchmarks of the hot components: the Zipf sampler, the
//! DRAM index, ZNS append/reset, FTL writes under GC pressure, HDD seeks,
//! and the filesystem write path. These guard the simulator's own
//! performance (host CPU per simulated op), not the simulated results.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{BlockDevice, Lba, Nanos, BLOCK_SIZE};

fn bench_zipf(c: &mut Criterion) {
    let zipf = workload::Zipf::new(10_000_000, 0.9);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("zipf_sample_10m_keys", |b| {
        b.iter(|| std::hint::black_box(zipf.sample(&mut rng)))
    });
}

fn bench_index(c: &mut Criterion) {
    use zns_cache::index::{Index, IndexEntry};
    use zns_cache::RegionId;
    let index = Index::new();
    for i in 0..100_000u64 {
        index.insert(
            i.wrapping_mul(0x9e3779b97f4a7c15),
            IndexEntry {
                region: RegionId((i % 64) as u32),
                offset: (i % 4096) as u32,
                key_len: 16,
                value_len: 100,
                fingerprint: i as u32,
                expiry: Nanos::MAX,
                accessed: false,
            },
        );
    }
    let mut i = 0u64;
    c.bench_function("index_lookup_100k_entries", |b| {
        b.iter(|| {
            i = i.wrapping_add(1) % 100_000;
            std::hint::black_box(index.lookup(i.wrapping_mul(0x9e3779b97f4a7c15), i as u32))
        })
    });
}

fn bench_zns(c: &mut Criterion) {
    use zns::{ZnsConfig, ZnsDevice, ZoneId};
    c.bench_function("zns_write_4k_plus_reset_cycle", |b| {
        let dev = ZnsDevice::new(ZnsConfig::small_test());
        let data = vec![7u8; BLOCK_SIZE];
        let cap = dev.zone_cap_blocks();
        let mut t = Nanos::ZERO;
        let mut written = 0u64;
        b.iter(|| {
            t = dev.write(ZoneId(0), &data, t).unwrap();
            written += 1;
            if written == cap {
                t = dev.reset(ZoneId(0), t).unwrap();
                written = 0;
            }
        })
    });
}

fn bench_ftl(c: &mut Criterion) {
    use ftl::{BlockSsd, FtlConfig};
    c.bench_function("ftl_write_4k_under_gc_pressure", |b| {
        let ssd = BlockSsd::new(FtlConfig::small_test());
        let span = ssd.block_count() * 3 / 4;
        let data = vec![7u8; BLOCK_SIZE];
        let mut t = Nanos::ZERO;
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 7919) % span;
            t = ssd.write(Lba(lba), &data, t).unwrap();
        })
    });
}

fn bench_hdd(c: &mut Criterion) {
    use hdd::{Hdd, HddConfig};
    c.bench_function("hdd_random_read_4k", |b| {
        let disk = Hdd::new(HddConfig::small_test());
        let data = vec![1u8; BLOCK_SIZE];
        let mut t = disk.write(Lba(0), &data, Nanos::ZERO).unwrap();
        let mut buf = vec![0u8; BLOCK_SIZE];
        let mut lba = 0u64;
        b.iter(|| {
            lba = (lba + 997) % 4096;
            // Reads of unwritten space still cost a seek on the model.
            t = disk.read(Lba(0), &mut buf, t).unwrap();
        })
    });
}

fn bench_f2fs(c: &mut Criterion) {
    use f2fs_lite::{FileSystem, FsConfig};
    c.bench_function("f2fs_overwrite_4k", |b| {
        let fs = FileSystem::format(FsConfig::small_test());
        let ino = fs.create("bench", Nanos::ZERO).unwrap();
        let data = vec![3u8; BLOCK_SIZE];
        let mut t = Nanos::ZERO;
        let mut block = 0u64;
        b.iter(|| {
            block = (block + 1) % 64;
            t = fs.pwrite(ino, block * BLOCK_SIZE as u64, &data, t).unwrap();
        })
    });
}

fn bench_middle_layer(c: &mut Criterion) {
    use zns::{ZnsConfig, ZnsDevice};
    use zns_cache::backend::{MiddleConfig, MiddleLayerBackend, RegionBackend};
    use zns_cache::RegionId;
    c.bench_function("middle_layer_region_rewrite", |b| {
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let backend = MiddleLayerBackend::new(dev, MiddleConfig::small_test());
        let image = vec![1u8; backend.region_size()];
        let hot = |_: RegionId| 1.0;
        let mut t = Nanos::ZERO;
        let mut region = 0u32;
        b.iter(|| {
            region = (region + 1) % backend.num_regions();
            t = backend.write_region(RegionId(region), &image, t).unwrap();
            let out = backend.maintenance(t, &hot).unwrap();
            t = out.done;
        })
    });
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_zipf, bench_index, bench_zns, bench_ftl, bench_hdd, bench_f2fs, bench_middle_layer
);
criterion_main!(components);
