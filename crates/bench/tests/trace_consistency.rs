//! The event trace must agree with the metrics it claims to explain:
//! per-kind event counts from a traced multi-thread run are checked
//! against the engine's own counters, and a run with tracing disabled
//! must record nothing at all.
//!
//! This lives in its own integration-test binary (one `#[test]`) because
//! the tracer is process-global: unit tests running in parallel threads
//! would interleave their events into the same rings.

use zns_cache::backend::GcMode;
use zns_cache::trace::{self, EventKind};
use zns_cache::Scheme;
use zns_cache_bench::{build_scheme_on, run_mt, DeviceProfile, MtConfig};

#[test]
fn traced_run_matches_metrics_and_disabled_run_records_nothing() {
    // Disabled (the default): a full workload must leave the rings
    // untouched — the zero-overhead contract for production runs.
    let cfg = MtConfig {
        threads: 4,
        ..MtConfig::smoke(4)
    };
    let sc = build_scheme_on(
        DeviceProfile::sparse(8).fast(),
        Scheme::File,
        5,
        GcMode::Migrate,
    );
    run_mt(&sc, &cfg);
    assert!(!trace::is_enabled());
    assert!(
        trace::snapshot().is_empty(),
        "tracing disabled must record no events"
    );
    assert_eq!(trace::dropped(), 0);

    // Enabled: rebuild the scheme after clearing so the trace covers the
    // cache's whole life, then compare per-kind counts to the engine's
    // cumulative counters (both include warmup).
    trace::enable();
    trace::clear();
    let sc = build_scheme_on(
        DeviceProfile::sparse(8).fast(),
        Scheme::File,
        5,
        GcMode::Migrate,
    );
    run_mt(&sc, &cfg);
    let events = trace::snapshot();
    let dropped = trace::dropped();
    trace::disable();
    trace::clear();

    assert_eq!(dropped, 0, "smoke-size run must fit the rings");
    assert!(!events.is_empty());
    let by_kind = trace::count_by_kind(&events);
    let count = |k: EventKind| by_kind.get(&k).copied().unwrap_or(0);
    let m = sc.cache.metrics();

    assert_eq!(
        count(EventKind::RegionSeal),
        m.flushes,
        "every successful seal must emit one RegionSeal event"
    );
    assert_eq!(
        count(EventKind::RegionEvict),
        m.evicted_regions,
        "every evicted region must emit one RegionEvict event"
    );
    assert_eq!(
        count(EventKind::InlineEviction),
        m.inline_evictions,
        "inline (foreground) evictions must be traced one-for-one"
    );
    assert_eq!(
        count(EventKind::MaintainerEviction),
        m.maintainer_evictions,
        "maintainer (background) evictions must be traced one-for-one"
    );
    // The per-region tables are the counters' spatial breakdown; their
    // totals must be the same numbers.
    assert_eq!(
        sc.cache.region_seal_counts().iter().sum::<u64>(),
        m.flushes
    );
    assert_eq!(
        sc.cache.region_eviction_counts().iter().sum::<u64>(),
        m.evicted_regions
    );
    // File-Cache runs the f2fs cleaner: passes must be balanced and any
    // victim event must belong to some pass.
    assert_eq!(
        count(EventKind::CleanerStart),
        count(EventKind::CleanerStop),
        "every cleaner pass must close"
    );
    if count(EventKind::CleanerVictim) > 0 {
        assert!(count(EventKind::CleanerStart) > 0);
    }
    // Timestamps arrive merged in nondecreasing simulated-time order.
    assert!(events.windows(2).all(|w| w[0].t <= w[1].t));
}
