//! Trace evidence for the deep-queue flush: during a Zone-Cache region
//! flush under the flash-realistic profile, at least two dies of the
//! stripe must be in service *at the same simulated time*. This is the
//! observable difference between the async submission core (append_depth
//! commands in flight) and a QD1 loop, which serializes the dies.
//!
//! Own integration-test binary because the tracer is process-global.

use sim::Nanos;
use zns_cache::backend::GcMode;
use zns_cache::trace::{self, EventKind};
use zns_cache::Scheme;
use zns_cache_bench::build_scheme_on;
use zns_cache_bench::profile::DeviceProfile;

#[test]
fn zone_cache_flush_overlaps_die_service_windows() {
    trace::enable();
    trace::clear();
    // Flash timing (NOT .fast()): die service windows have real extent,
    // so overlap in simulated time is meaningful.
    let sc = build_scheme_on(DeviceProfile::sparse(8), Scheme::Zone, 8, GcMode::Migrate);
    assert!(
        sc.cache.config().dram_write_back,
        "experiment config must run the write-back DRAM tier"
    );

    // Write-back absorbs sets in DRAM; only *accessed* evictees demote to
    // the flash log. Touch each key once while resident, then keep
    // inserting until the demotion stream has sealed and flushed at least
    // one full zone.
    let value = vec![0x5au8; 64 * 1024];
    let mut t = Nanos::ZERO;
    let mut i = 0u64;
    while sc.cache.metrics().flushes < 1 {
        assert!(i < 4096, "no region flush after {i} sets — demotion stream stalled");
        let key = i.to_le_bytes();
        t = sc.cache.set(&key, &value, t).unwrap();
        let (v, t2) = sc.cache.get(&key, t).unwrap();
        assert!(v.is_some());
        t = t2;
        i += 1;
    }
    t = sc.cache.drain_flushes(t);
    let _ = t;

    let events = trace::snapshot();
    let dropped = trace::dropped();
    trace::disable();
    trace::clear();
    assert_eq!(dropped, 0, "flush-scale run must fit the trace rings");

    // DieService: a = die index, t = service start, b = service end.
    let windows: Vec<(u64, Nanos, Nanos)> = events
        .iter()
        .filter(|e| e.kind == EventKind::DieService)
        .map(|e| (e.a, e.t, Nanos::from_nanos(e.b)))
        .collect();
    assert!(
        windows.len() >= 2,
        "a zone flush across a multi-die stripe must trace per-die service windows"
    );
    let overlapping = windows.iter().enumerate().any(|(n, &(die_a, s_a, e_a))| {
        windows.iter().skip(n + 1).any(|&(die_b, s_b, e_b)| {
            die_a != die_b && s_a < e_b && s_b < e_a
        })
    });
    assert!(
        overlapping,
        "no two distinct dies were in service at the same simulated time: \
         the flush ran effectively QD1 ({windows:?})"
    );
}
