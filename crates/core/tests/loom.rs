//! Loom model checks for the engine's lock-free protocols.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; run with
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p zns-cache --test loom
//! ```
//!
//! (`scripts/tier1.sh` does this.) Each test is a *miniature* of one of
//! the engine's unlocked crossings, built from the same
//! [`zns_cache::protocol`] types the engine uses, with
//! [`loom::cell::UnsafeCell`] standing in for the storage bytes so the
//! checker can detect any unsynchronized access. Every interleaving of
//! every model is explored exhaustively.
//!
//! Five protocols are covered, each with a negative twin that weakens
//! the ordering and *demonstrates the bug the protocol exists to
//! prevent* — so the suite fails loudly if someone "optimizes" the
//! orderings, and documents why they are what they are:
//!
//! | protocol | positive model | negative twin |
//! |---|---|---|
//! | commit window (seal-vs-late-writer) | `commit_*` | relaxed quiesce races the payload copy |
//! | generation/pin (read-vs-evict ABA) | `generation_*` | acq/rel store-buffering lets both sides miss each other |
//! | clean-pool handoff (maintainer-vs-inline-eviction) | `clean_pool_*` | unguarded pool double-allocates a region |
//! | in-flight flush completion (submit-vs-wait) | `inflight_*` | relaxed done-flag store races the flush results |
//! | demote supersession epoch (write-back demote-vs-set/delete) | `demote_epoch_*` | check-before-publish lets a stale demotion land |

#![cfg(loom)]

use loom::cell::UnsafeCell;
use loom::model;
use zns_cache::protocol::{CleanPool, CommitWindow, Generation, Pins};
use zns_cache::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use zns_cache::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Protocol 1: append-window commit / seal quiescence.
//
// The engine's phase-2 write path copies payload bytes into a reserved
// range with no lock, then `commit()`s the byte count; the sealer
// `quiesce()`s on the total before flushing the image. The miniature:
// two independent "payload cells", two writers, one sealer.
// ---------------------------------------------------------------------

#[test]
fn commit_quiesce_orders_payload_before_seal() {
    model(|| {
        let cells = Arc::new((UnsafeCell::new(0u32), UnsafeCell::new(0u32)));
        let window = Arc::new(CommitWindow::new());

        for i in 0..2u32 {
            let cells = Arc::clone(&cells);
            let window = Arc::clone(&window);
            loom::thread::spawn(move || {
                // The reservation: cell i is exclusively this writer's.
                if i == 0 {
                    cells.0.with_mut(|p| unsafe { *p = 1 });
                } else {
                    cells.1.with_mut(|p| unsafe { *p = 2 });
                }
                window.commit(1);
            });
        }

        // The sealer (writer-lock holder): quiesce, then take the image.
        window.quiesce(2);
        let a = cells.0.with(|p| unsafe { *p });
        let b = cells.1.with(|p| unsafe { *p });
        assert_eq!((a, b), (1, 2), "seal observed an uncommitted payload");
    });
}

#[test]
#[should_panic]
fn commit_quiesce_with_relaxed_load_races_the_payload() {
    // The negative twin: a quiesce that spins on a Relaxed load never
    // synchronizes with the writer's payload copy, so the sealer's read
    // of the cell is a data race (loom aborts the execution) — this is
    // exactly why CommitWindow::committed() is Acquire.
    model(|| {
        let cell = Arc::new(UnsafeCell::new(0u32));
        let committed = Arc::new(AtomicU32::new(0));

        {
            let cell = Arc::clone(&cell);
            let committed = Arc::clone(&committed);
            loom::thread::spawn(move || {
                cell.with_mut(|p| unsafe { *p = 1 });
                committed.store(1, Ordering::Release);
            });
        }

        while committed.load(Ordering::Relaxed) == 0 {
            loom::thread::yield_now();
        }
        let _ = cell.with(|p| unsafe { *p });
    });
}

// ---------------------------------------------------------------------
// Protocol 2: region generation / pin revalidation (read-vs-evict).
//
// Reader: pin → sample generation → read storage → changed_since?
// Evictor: invalidate → drain pins → reclaim storage. The protocol must
// guarantee the evictor never reclaims (writes) the cell while a reader
// who trusts it is still reading — and that a reader who raced the
// invalidation discards its bytes.
// ---------------------------------------------------------------------

#[test]
fn generation_pin_protects_readers_from_reclaim() {
    // The full eviction sequence, as the engine performs it: invalidate
    // the generation, REMOVE THE INDEX ENTRIES, drain pins, reclaim
    // storage. The index re-check after pinning is load-bearing: a
    // reader that pins after the drain already passed would otherwise
    // trust the new generation while the evictor is still reclaiming.
    model(|| {
        let storage = Arc::new(UnsafeCell::new(7u32));
        let generation = Arc::new(Generation::new());
        let pins = Arc::new(Pins::new());
        // `true` = the index still holds an entry pointing at `storage`.
        let index = Arc::new(Mutex::new(true));

        let reader = {
            let storage = Arc::clone(&storage);
            let generation = Arc::clone(&generation);
            let pins = Arc::clone(&pins);
            let index = Arc::clone(&index);
            loom::thread::spawn(move || {
                let pin = pins.pin();
                let sampled = generation.sample();
                // The engine's `index.get_at` re-check under a shard
                // lock, done after the pin.
                if !*index.lock() {
                    drop(pin);
                    return; // Stale: retry from the index.
                }
                // The unlocked storage read. If the protocol is right,
                // the evictor can never be concurrently reclaiming —
                // loom would flag the UnsafeCell race otherwise.
                let value = storage.with(|p| unsafe { *p });
                if !generation.changed_since(sampled) {
                    // Revalidated: the bytes must be the pre-reclaim
                    // image, never eviction garbage.
                    assert_eq!(value, 7, "served reclaimed storage");
                }
                drop(pin);
            })
        };

        // The evictor, in the engine's order.
        generation.invalidate();
        *index.lock() = false;
        pins.drain();
        // All readers that could trust this storage are gone; reclaim
        // is exclusive.
        storage.with_mut(|p| unsafe { *p = 99 });

        reader.join().unwrap();
    });
}

#[test]
#[should_panic]
fn generation_with_acquire_release_suffers_store_buffering() {
    // The negative twin, and the reason Generation/Pins are SeqCst: with
    // only release/acquire the reader's `pin; load gen` and the
    // evictor's `bump gen; load pins` are a store-buffering (Dekker)
    // pair. One interleaving lets the reader sample the OLD generation
    // while the evictor reads ZERO pins — both proceed, and the reader's
    // storage read races the evictor's reclaim write. Loom reaches that
    // execution and reports the race (or the garbage assert fires).
    model(|| {
        let storage = Arc::new(UnsafeCell::new(7u32));
        let generation = Arc::new(AtomicU64::new(0));
        let pins = Arc::new(AtomicU32::new(0));

        {
            let storage = Arc::clone(&storage);
            let generation = Arc::clone(&generation);
            let pins = Arc::clone(&pins);
            loom::thread::spawn(move || {
                pins.fetch_add(1, Ordering::Release); // pin (too weak)
                let sampled = generation.load(Ordering::Acquire);
                let value = storage.with(|p| unsafe { *p });
                if generation.load(Ordering::Acquire) == sampled {
                    assert_eq!(value, 7, "served reclaimed storage");
                }
                pins.fetch_sub(1, Ordering::Release); // unpin
            });
        }

        generation.fetch_add(1, Ordering::Release); // invalidate (too weak)
        while pins.load(Ordering::Acquire) != 0 {
            loom::thread::yield_now(); // drain (too weak)
        }
        storage.with_mut(|p| unsafe { *p = 99 }); // reclaim
    });
}

#[test]
fn generation_invalidate_is_seen_by_later_samples() {
    // Monotonicity miniature: once a reader samples, any invalidation
    // between sample and recheck is always detected — `changed_since`
    // can produce false *staleness* (harmless retry) but never a false
    // *freshness*.
    model(|| {
        let generation = Arc::new(Generation::new());

        let evictor = {
            let generation = Arc::clone(&generation);
            loom::thread::spawn(move || {
                generation.invalidate();
            })
        };

        let sampled = generation.sample();
        let changed_then = generation.changed_since(sampled);
        evictor.join().unwrap();
        // After the evictor is joined (happens-before via join), the
        // bump is visible: either we sampled the new generation (and it
        // still matches) or the recheck must flag the change.
        if sampled == 0 {
            assert!(
                generation.changed_since(sampled),
                "invalidation invisible after join"
            );
        } else {
            assert!(!changed_then || generation.changed_since(sampled));
        }
    });
}

// ---------------------------------------------------------------------
// Protocol 3: clean-pool handoff (maintainer-vs-inline eviction).
//
// The pool itself sits behind the writer mutex; the protocol is the
// ownership discipline — pop transfers a region to exactly one writer,
// and a dry pool forces inline eviction of a *sealed* region, which
// must also end up uniquely owned.
// ---------------------------------------------------------------------

#[test]
fn clean_pool_hands_each_region_to_exactly_one_writer() {
    model(|| {
        // One pooled clean region + one sealed region reclaimable
        // inline: two writers, two regions, each must get a distinct one.
        let pool = Arc::new(Mutex::new(CleanPool::new()));
        pool.lock().push(0);
        let sealed = Arc::new(Mutex::new(Some(1u32)));
        let owned = Arc::new(Mutex::new(Vec::new()));

        let mut handles = Vec::new();
        for _ in 0..2 {
            let pool = Arc::clone(&pool);
            let sealed = Arc::clone(&sealed);
            let owned = Arc::clone(&owned);
            handles.push(loom::thread::spawn(move || {
                // The engine's acquire_region under the writer lock:
                // pop the pool, or evict inline when dry.
                let region = {
                    let mut pool = pool.lock();
                    match pool.pop() {
                        Some(r) => Some(r),
                        None => sealed.lock().take(),
                    }
                };
                if let Some(r) = region {
                    owned.lock().push(r);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }

        let mut owned = owned.lock().clone();
        owned.sort_unstable();
        assert_eq!(owned, vec![0, 1], "a region was double-allocated or lost");
    });
}

// ---------------------------------------------------------------------
// Protocol 4: in-flight flush completion (async submit → waiter).
//
// The submitter runs the device call with no lock held, writes its
// results (sealed-slot metadata, metrics — the payload cell here), and
// completes the InflightCell. A pipeline waiter that observes the done
// flag must also observe every one of those writes.
// ---------------------------------------------------------------------

#[test]
fn inflight_completion_publishes_submitter_writes() {
    model(|| {
        let results = Arc::new(UnsafeCell::new(0u32));
        let cell = Arc::new(zns_cache::protocol::InflightCell::new());

        {
            let results = Arc::clone(&results);
            let cell = Arc::clone(&cell);
            loom::thread::spawn(move || {
                // The flush's side effects land before the completion.
                results.with_mut(|p| unsafe { *p = 9 });
                cell.complete(sim::Nanos(5));
            });
        }

        // A waiter draining the pipeline (loom needs the yield; the
        // engine's wait_done spins the same loop).
        let done = loop {
            if let Some(done) = cell.try_done() {
                break done;
            }
            loom::thread::yield_now();
        };
        assert_eq!(done, sim::Nanos(5));
        let seen = results.with(|p| unsafe { *p });
        assert_eq!(seen, 9, "waiter observed the flag without the flush results");
    });
}

#[test]
#[should_panic]
fn inflight_with_relaxed_flag_store_races_the_flush_results() {
    // The negative twin, and why InflightCell::complete is Release: a
    // Relaxed done-flag store publishes nothing, so the waiter's read of
    // the flush results is a data race (loom aborts the execution).
    model(|| {
        let results = Arc::new(UnsafeCell::new(0u32));
        let state = Arc::new(AtomicU64::new(0));

        {
            let results = Arc::clone(&results);
            let state = Arc::clone(&state);
            loom::thread::spawn(move || {
                results.with_mut(|p| unsafe { *p = 9 });
                state.store(1, Ordering::Relaxed);
            });
        }

        while state.load(Ordering::Acquire) == 0 {
            loom::thread::yield_now();
        }
        let _ = results.with(|p| unsafe { *p });
    });
}

#[test]
fn clean_pool_refill_and_drain_never_alias() {
    model(|| {
        // Maintainer refills while a writer drains: region 0 cycles
        // writer → (use) → maintainer reclaim → pool → writer, and the
        // CleanPool double-push debug_assert holds on every path.
        let pool = Arc::new(Mutex::new(CleanPool::new()));
        pool.lock().push(0);

        let maintainer = {
            let pool = Arc::clone(&pool);
            loom::thread::spawn(move || {
                // Reclaims region 1 in the background.
                pool.lock().push(1);
            })
        };

        let first = pool.lock().pop();
        assert!(first.is_some() || !pool.lock().is_empty());
        maintainer.join().unwrap();
        let mut seen: Vec<u32> = first.into_iter().collect();
        while let Some(r) = pool.lock().pop() {
            seen.push(r);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1], "handoff lost or duplicated a region");
    });
}

// ---------------------------------------------------------------------
// Protocol 5: write-back demote supersession epoch.
//
// In write-back mode a DRAM eviction demotes the evicted version to the
// flash index *after* the shard lock is released. A concurrent set (or
// delete) of the same key can remove the key's flash entry in that
// window; if the demotion then lands, a superseded — or deleted —
// version resurfaces behind the newer one. The engine closes the
// crossing with a per-shard `Generation` epoch: writers bump it under
// the shard lock *before* touching the index, the demoter samples it at
// eviction (after its own set's bump) and re-checks after publishing,
// un-publishing on movement. The miniature: `dram` and `index` are
// single-key maps (value = version), the demoter evicts whatever is
// resident, a second thread supersedes the key.
// ---------------------------------------------------------------------

/// The demoter half of the protocol: evict the resident version (epoch
/// sampled under the same lock, after the evicting set's own bump), then
/// publish it to the index and un-publish if the epoch moved.
fn demote_with_recheck(
    dram: &Mutex<Option<u32>>,
    index: &Mutex<Option<u32>>,
    epoch: &Generation,
) {
    let (evicted, sampled) = {
        let mut d = dram.lock();
        let evicted = d.take();
        // The evicting set's own bump (it inserted some other key), then
        // the sample — ordered so only *someone else's* bump undoes us.
        epoch.invalidate();
        (evicted, epoch.sample())
    };
    if let Some(v) = evicted {
        *index.lock() = Some(v);
        if epoch.changed_since(sampled) {
            // Location-checked un-publish: only remove our own entry.
            let mut ix = index.lock();
            if *ix == Some(v) {
                *ix = None;
            }
        }
    }
}

#[test]
fn demote_epoch_undo_prevents_stale_republication() {
    model(|| {
        let dram = Arc::new(Mutex::new(Some(1u32))); // version 1 resident
        let index = Arc::new(Mutex::new(None::<u32>));
        let epoch = Arc::new(Generation::new());

        let setter = {
            let (dram, index, epoch) = (Arc::clone(&dram), Arc::clone(&index), Arc::clone(&epoch));
            loom::thread::spawn(move || {
                // set(K, 2): absorb into DRAM with the bump under the
                // lock, then drop the key's flash entry up front.
                {
                    let mut d = dram.lock();
                    *d = Some(2);
                    epoch.invalidate();
                }
                *index.lock() = None;
            })
        };

        demote_with_recheck(&dram, &index, &epoch);
        setter.join().unwrap();

        let d = *dram.lock();
        let ix = *index.lock();
        // Whatever the interleaving: once version 2 is the resident
        // authority, version 1 must not survive in the flash index.
        if d == Some(2) {
            assert_ne!(ix, Some(1), "superseded demotion shadowed the newer version");
        }
    });
}

#[test]
fn demote_epoch_undo_prevents_deleted_key_resurrection() {
    model(|| {
        let dram = Arc::new(Mutex::new(Some(1u32)));
        let index = Arc::new(Mutex::new(None::<u32>));
        let epoch = Arc::new(Generation::new());

        let deleter = {
            let (dram, index, epoch) = (Arc::clone(&dram), Arc::clone(&index), Arc::clone(&epoch));
            loom::thread::spawn(move || {
                // delete(K): purge DRAM with the bump under the lock —
                // even when the demoter already took the only copy —
                // then remove the flash entry.
                {
                    let mut d = dram.lock();
                    let _ = d.take();
                    epoch.invalidate();
                }
                *index.lock() = None;
            })
        };

        demote_with_recheck(&dram, &index, &epoch);
        deleter.join().unwrap();

        assert_eq!(*dram.lock(), None);
        assert_eq!(
            *index.lock(),
            None,
            "an in-flight demotion resurrected a deleted key"
        );
    });
}

#[test]
#[should_panic]
fn demote_epoch_check_before_publish_lets_a_stale_demotion_land() {
    // The negative twin, and why the demoter re-checks *after*
    // publishing: a check-then-publish (TOCTOU) passes while the epoch
    // is still clean, then lands the stale version after the setter has
    // already removed the key's flash entry — nothing is left to notice.
    model(|| {
        let dram = Arc::new(Mutex::new(Some(1u32)));
        let index = Arc::new(Mutex::new(None::<u32>));
        let epoch = Arc::new(Generation::new());

        let setter = {
            let (dram, index, epoch) = (Arc::clone(&dram), Arc::clone(&index), Arc::clone(&epoch));
            loom::thread::spawn(move || {
                {
                    let mut d = dram.lock();
                    *d = Some(2);
                    epoch.invalidate();
                }
                *index.lock() = None;
            })
        };

        // The broken demoter: sample, check, and only then publish.
        let (evicted, sampled) = {
            let mut d = dram.lock();
            let evicted = d.take();
            epoch.invalidate();
            (evicted, epoch.sample())
        };
        if let Some(v) = evicted {
            if !epoch.changed_since(sampled) {
                *index.lock() = Some(v);
            }
        }
        setter.join().unwrap();

        let d = *dram.lock();
        let ix = *index.lock();
        if d == Some(2) {
            assert_ne!(ix, Some(1), "superseded demotion shadowed the newer version");
        }
    });
}
