//! Proves the `stale_reads` counter is wired: an unlocked flash read that
//! races a region eviction must detect the region-generation change,
//! count one stale read, and degrade to a miss — never return the
//! evicted bytes.
//!
//! The race window (between a reader sampling the region generation and
//! revalidating it after the device read) is nanoseconds wide in normal
//! runs, which is why `stale_reads` shows 0 in every benchmark. This
//! test holds the window open deterministically: a gated backend blocks
//! the reader inside its device read while a writer thread evicts the
//! region underneath it. Eviction invalidates the generation *before*
//! waiting out pinned readers, so once the gate opens the reader is
//! guaranteed to see the change.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

use sim::Nanos;
use zns_cache::backend::RegionBackend;
use zns_cache::{CacheConfig, CacheError, EvictionPolicy, LogCache, RegionId};

const REGION_SIZE: usize = 4096;
const NUM_REGIONS: u32 = 4;

/// In-memory backend whose next read (after [`GatedBackend::arm`]) parks
/// until [`GatedBackend::release`], reporting the parked reader through a
/// channel so the test can sequence the eviction around it.
struct GatedBackend {
    regions: Vec<Mutex<Vec<u8>>>,
    armed: AtomicBool,
    parked_tx: Mutex<Option<mpsc::Sender<()>>>,
    gate: Mutex<bool>,
    opened: Condvar,
    host_bytes: AtomicU64,
}

impl GatedBackend {
    fn new() -> Self {
        GatedBackend {
            regions: (0..NUM_REGIONS)
                .map(|_| Mutex::new(vec![0u8; REGION_SIZE]))
                .collect(),
            armed: AtomicBool::new(false),
            parked_tx: Mutex::new(None),
            gate: Mutex::new(false),
            opened: Condvar::new(),
            host_bytes: AtomicU64::new(0),
        }
    }

    /// The next read parks; the parked reader is announced on `tx`.
    fn arm(&self, tx: mpsc::Sender<()>) {
        *self.parked_tx.lock().unwrap() = Some(tx);
        *self.gate.lock().unwrap() = false;
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Unparks the gated reader.
    fn release(&self) {
        *self.gate.lock().unwrap() = true;
        self.opened.notify_all();
    }
}

impl RegionBackend for GatedBackend {
    fn region_size(&self) -> usize {
        REGION_SIZE
    }

    fn num_regions(&self) -> u32 {
        NUM_REGIONS
    }

    fn write_region(
        &self,
        region: RegionId,
        data: &[u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        self.regions[region.0 as usize].lock().unwrap().copy_from_slice(data);
        self.host_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(now)
    }

    fn read(
        &self,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        // Single-shot: only the armed read parks; the announcement lets
        // the test start the eviction while this reader is mid-flight.
        if self.armed.swap(false, Ordering::SeqCst) {
            if let Some(tx) = self.parked_tx.lock().unwrap().take() {
                let _ = tx.send(());
            }
            let mut opened = self.gate.lock().unwrap();
            while !*opened {
                opened = self.opened.wait(opened).unwrap();
            }
        }
        let data = self.regions[region.0 as usize].lock().unwrap();
        buf.copy_from_slice(&data[offset..offset + buf.len()]);
        Ok(now)
    }

    fn discard_region(&self, region: RegionId, now: Nanos) -> Result<Nanos, CacheError> {
        // Poison the storage: if a raced read ever trusted a discarded
        // region, key verification would surface it as corruption.
        self.regions[region.0 as usize].lock().unwrap().fill(0xA5);
        Ok(now)
    }

    fn host_bytes_written(&self) -> u64 {
        self.host_bytes.load(Ordering::Relaxed)
    }

    fn media_bytes_written(&self) -> u64 {
        self.host_bytes.load(Ordering::Relaxed)
    }

    fn label(&self) -> &'static str {
        "gated-test"
    }
}

#[test]
fn read_racing_eviction_counts_a_stale_read_and_misses() {
    let backend = Arc::new(GatedBackend::new());
    let mut config = CacheConfig::small_test();
    config.read_retry_attempts = 3;
    // FIFO makes the victim deterministic: the first-sealed region is
    // evicted first, no matter how reads restamp recency meanwhile.
    config.eviction = EvictionPolicy::Fifo;
    // Sparse-store mode is what every benchmark profile runs (payloads
    // not verifiable), and it is the path where the generation
    // revalidation is the *only* guard — the one `stale_reads` counts.
    // (With `verify_keys` a raced read that still checksums clean is
    // served as a legitimate hit: the pin kept its storage alive.)
    config.verify_keys = false;
    let cache = Arc::new(LogCache::new(backend.clone(), config).unwrap());

    // Fill until the first region seals; every key set before the seal
    // lives in that sealed region (the last set opened the next buffer).
    let value = vec![7u8; 900];
    let mut t = Nanos::ZERO;
    let mut keys = Vec::new();
    while cache.metrics().flushes == 0 {
        let key = format!("a{}", keys.len());
        t = cache.set(key.as_bytes(), &value, t).unwrap();
        keys.push(key);
    }
    assert!(keys.len() >= 3, "need several keys in the sealed region");
    let victim_key = keys[0].clone();
    let probe_key = keys[1].clone();

    // Drain the flush pipeline: a freshly sealed region is served from its
    // detached RAM image until the flush ticket resolves, and this test
    // needs the reader on the *flash* path. The barrier retires the image.
    t = cache.flush(t).unwrap();

    // Park a reader inside the device read of the sealed region. It has
    // already pinned the region and sampled its generation.
    let (parked_tx, parked_rx) = mpsc::channel();
    backend.arm(parked_tx);
    let reader = {
        let cache = Arc::clone(&cache);
        let key = victim_key.clone();
        std::thread::spawn(move || cache.get(key.as_bytes(), t).unwrap().0)
    };
    parked_rx.recv().expect("reader never reached the device read");

    // Churn new sets until the writer must evict. LRU picks the sealed
    // region under the parked reader (every other region was written
    // later). The evicting thread invalidates the generation, drops the
    // region's index entries, then blocks draining the reader's pin.
    let evictor = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            let mut t = t;
            let mut i = 0u32;
            while cache.metrics().evicted_regions == 0 {
                let key = format!("b{i}");
                t = cache.set(key.as_bytes(), &value, t).unwrap();
                i += 1;
                assert!(i < 64, "eviction never triggered");
            }
        })
    };

    // Wait until eviction has dropped the sealed region's index entries
    // (a probe key from the same region stops resolving) — that happens
    // strictly before the evictor blocks on the reader's pin, so this
    // terminates even while the reader is still parked.
    loop {
        let (hit, _) = cache.get(probe_key.as_bytes(), t).unwrap();
        if hit.is_none() {
            break;
        }
        std::thread::yield_now();
    }

    // Unpark the reader: its post-read revalidation must see the bumped
    // generation, count a stale read, and retry into a clean miss.
    backend.release();
    let read_result = reader.join().unwrap();
    evictor.join().unwrap();

    assert_eq!(
        read_result, None,
        "a read that raced its region's eviction must miss, not serve evicted bytes"
    );
    let m = cache.metrics();
    assert!(
        m.stale_reads >= 1,
        "the raced read must be counted: stale_reads = {}",
        m.stale_reads
    );
    assert!(m.evicted_regions >= 1);
}
