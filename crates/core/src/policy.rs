//! Eviction and admission policies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Region-granular eviction policy (the paper uses LRU, §4.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the region whose objects were least recently accessed.
    #[default]
    Lru,
    /// Evict regions in seal order.
    Fifo,
}

/// Flash admission policy. CacheLib uses admission control to stretch
/// flash endurance; `Always` matches the paper's experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum Admission {
    /// Admit every insert.
    #[default]
    Always,
    /// Admit with fixed probability (CacheLib's "random reject").
    Random {
        /// Probability of admitting, in `[0, 1]`.
        probability: f64,
    },
}

/// Stateful admission gate (deterministic under a fixed seed).
#[derive(Debug)]
pub struct AdmissionGate {
    policy: Admission,
    rng: StdRng,
}

impl AdmissionGate {
    /// Creates the gate. The seed only matters for `Random`.
    pub fn new(policy: Admission, seed: u64) -> Self {
        AdmissionGate {
            policy,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Whether this insert should reach flash.
    pub fn admit(&mut self) -> bool {
        match self.policy {
            Admission::Always => true,
            Admission::Random { probability } => self.rng.gen_bool(probability.clamp(0.0, 1.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_admits() {
        let mut g = AdmissionGate::new(Admission::Always, 1);
        assert!((0..100).all(|_| g.admit()));
    }

    #[test]
    fn random_admits_in_proportion() {
        let mut g = AdmissionGate::new(Admission::Random { probability: 0.3 }, 42);
        let admitted = (0..10_000).filter(|_| g.admit()).count();
        assert!((2_700..3_300).contains(&admitted), "admitted {admitted}");
    }

    #[test]
    fn random_extremes_clamp() {
        let mut g = AdmissionGate::new(Admission::Random { probability: 1.5 }, 1);
        assert!(g.admit());
        let mut g = AdmissionGate::new(Admission::Random { probability: -0.5 }, 1);
        assert!(!g.admit());
    }
}
