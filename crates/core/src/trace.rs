//! Trace export: the [`sim::trace`] event log as JSONL.
//!
//! The recording machinery (ring buffers, event kinds, enable/disable)
//! lives in [`sim::trace`] so every layer — the ZNS device model,
//! `f2fs-lite`'s cleaner, and this crate's engine — can emit into one
//! merged timeline. This module re-exports it and adds the line-oriented
//! JSON serialization the benchmark binaries write behind `--trace-out`.
//!
//! One event per line, stable field order:
//!
//! ```json
//! {"t":153600,"thread":0,"seq":42,"kind":"region_seal","a":3,"b":262144}
//! ```
//!
//! * `t` — simulated nanoseconds the emitter observed,
//! * `thread` — dense id of the emitting thread (registration order),
//! * `seq` — global emission order (tie-breaker for equal timestamps),
//! * `kind` — snake_case event name (see [`EventKind`]),
//! * `a`/`b` — kind-specific payload (documented on [`EventKind`]).
//!
//! Lines are sorted by `(t, seq)`; a consumer can stream-process without
//! buffering. `jq`, `grep`, and a text editor all work on the output.

pub use sim::trace::{
    clear, disable, dropped, emit, enable, is_enabled, snapshot, Event, EventKind, RING_CAPACITY,
};

use std::io::Write;

/// Serializes one event as a single JSON line (no trailing newline).
pub fn to_json_line(e: &Event) -> String {
    // Hand-rolled: every field is an integer or a fixed identifier, so
    // full serde machinery would buy nothing over format!.
    format!(
        "{{\"t\":{},\"thread\":{},\"seq\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
        e.t.as_nanos(),
        e.thread,
        e.seq,
        e.kind.name(),
        e.a,
        e.b
    )
}

/// Writes `events` as JSONL to `out`, one line per event.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_jsonl<W: Write>(out: &mut W, events: &[Event]) -> std::io::Result<()> {
    for e in events {
        writeln!(out, "{}", to_json_line(e))?;
    }
    Ok(())
}

/// Takes a snapshot of the global tracer and writes it to `path` as
/// JSONL. Returns the number of events written.
///
/// # Errors
///
/// File creation/write failures.
pub fn dump_to_file(path: &str) -> std::io::Result<usize> {
    let events = snapshot();
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_jsonl(&mut file, &events)?;
    file.flush()?;
    Ok(events.len())
}

/// Counts events of each kind in a snapshot — the cross-check a report
/// runs against the engine's aggregate metrics.
pub fn count_by_kind(events: &[Event]) -> std::collections::HashMap<EventKind, u64> {
    let mut counts = std::collections::HashMap::new();
    for e in events {
        *counts.entry(e.kind).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Nanos;

    #[test]
    fn json_line_shape_is_stable() {
        let e = Event {
            seq: 42,
            thread: 0,
            t: Nanos(153_600),
            kind: EventKind::RegionSeal,
            a: 3,
            b: 262_144,
        };
        assert_eq!(
            to_json_line(&e),
            "{\"t\":153600,\"thread\":0,\"seq\":42,\"kind\":\"region_seal\",\"a\":3,\"b\":262144}"
        );
    }

    #[test]
    fn jsonl_writer_emits_one_line_per_event() {
        let events = vec![
            Event {
                seq: 1,
                thread: 0,
                t: Nanos(10),
                kind: EventKind::InlineEviction,
                a: 1,
                b: 0,
            },
            Event {
                seq: 2,
                thread: 1,
                t: Nanos(20),
                kind: EventKind::CleanerVictim,
                a: 5,
                b: 77,
            },
        ];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"inline_eviction\""));
        assert!(lines[1].contains("\"kind\":\"cleaner_victim\""));
        assert!(lines[1].contains("\"b\":77"));
    }

    #[test]
    fn count_by_kind_groups_events() {
        let mk = |seq, kind| Event {
            seq,
            thread: 0,
            t: Nanos(seq),
            kind,
            a: 0,
            b: 0,
        };
        let events = vec![
            mk(1, EventKind::RegionEvict),
            mk(2, EventKind::RegionEvict),
            mk(3, EventKind::RegionSeal),
        ];
        let counts = count_by_kind(&events);
        assert_eq!(counts[&EventKind::RegionEvict], 2);
        assert_eq!(counts[&EventKind::RegionSeal], 1);
        assert_eq!(counts.get(&EventKind::ZoneReset), None);
    }
}
