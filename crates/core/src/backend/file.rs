//! File-Cache backend: regions inside one large file on `f2fs-lite`.
//!
//! The filesystem owns all low-level management (§3.1): region writes are
//! plain `pwrite`s; the FS performs its own logging, node updates, and
//! cleaning underneath. Convenient — and every cost the paper attributes
//! to File-Cache (metadata writes, FS GC, OP reservation) accrues in the
//! `f2fs-lite` layer automatically.

use std::sync::Arc;

use f2fs_lite::{FileSystem, Ino};
use sim::{Counter, Nanos, BLOCK_SIZE};

use crate::types::{CacheError, RegionId};

use super::{check_region_read, check_region_write, RegionBackend};

/// Regions stored in a pre-created file.
pub struct FileBackend {
    fs: Arc<FileSystem>,
    ino: Ino,
    region_size: usize,
    num_regions: u32,
    /// Deallocate evicted regions with `punch_hole` so the filesystem's
    /// cleaner sees them as dead immediately (instead of only at rewrite
    /// time). Stock CacheLib does not do this; the experiments enable it
    /// because the paper's measured File-Cache WA implies eagerly
    /// reclaimable regions.
    punch_on_discard: bool,
    host_bytes: Counter,
}

impl FileBackend {
    /// Creates the cache file and sizes the backend to `num_regions`.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] if the file cannot be created or the filesystem
    /// cannot hold the requested capacity.
    ///
    /// # Panics
    ///
    /// Panics on a misaligned `region_size` (configuration bug).
    pub fn create(
        fs: Arc<FileSystem>,
        file_name: &str,
        region_size: usize,
        num_regions: u32,
        now: Nanos,
    ) -> Result<Self, CacheError> {
        assert!(
            region_size > 0 && region_size.is_multiple_of(BLOCK_SIZE),
            "region size {region_size} must be a positive multiple of {BLOCK_SIZE}"
        );
        let needed = region_size as u64 * num_regions as u64;
        if needed > fs.capacity_bytes() {
            return Err(CacheError::Io(format!(
                "cache of {needed} bytes exceeds filesystem capacity {}",
                fs.capacity_bytes()
            )));
        }
        let ino = fs.create(file_name, now)?;
        Ok(FileBackend {
            fs,
            ino,
            region_size,
            num_regions,
            punch_on_discard: false,
            host_bytes: Counter::new(),
        })
    }

    /// Enables hole punching on region eviction (see the field docs).
    pub fn with_punch_on_discard(mut self, enable: bool) -> Self {
        self.punch_on_discard = enable;
        self
    }

    /// The underlying filesystem (for FS-level statistics).
    pub fn filesystem(&self) -> &Arc<FileSystem> {
        &self.fs
    }

    fn offset(&self, region: RegionId) -> u64 {
        region.0 as u64 * self.region_size as u64
    }
}

impl RegionBackend for FileBackend {
    fn region_size(&self) -> usize {
        self.region_size
    }

    fn num_regions(&self) -> u32 {
        self.num_regions
    }

    fn write_region(
        &self,
        region: RegionId,
        data: &[u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        check_region_write(region, data.len(), self.region_size, self.num_regions)?;
        let done = self.fs.pwrite(self.ino, self.offset(region), data, now)?;
        self.host_bytes.add(data.len() as u64);
        Ok(done)
    }

    fn read(
        &self,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        check_region_read(region, offset, buf.len(), self.region_size, self.num_regions)?;
        // 4 KiB-align the file read around the requested range.
        let byte = self.offset(region) + offset as u64;
        let first = byte / BLOCK_SIZE as u64 * BLOCK_SIZE as u64;
        let end = byte + buf.len() as u64;
        let aligned_end = end.div_ceil(BLOCK_SIZE as u64) * BLOCK_SIZE as u64;
        let mut cover = vec![0u8; (aligned_end - first) as usize];
        let done = self.fs.pread(self.ino, first, &mut cover, now)?;
        let start = (byte - first) as usize;
        buf.copy_from_slice(&cover[start..start + buf.len()]);
        Ok(done)
    }

    fn maintenance(
        &self,
        now: Nanos,
        _temperature: &dyn Fn(RegionId) -> f64,
    ) -> Result<super::MaintenanceOutcome, CacheError> {
        // Run the filesystem's cleaner in the background so foreground
        // writers do not hit the free-zone floor and clean inline under
        // their own op latency — the File-Cache collapse mode.
        let done = self.fs.clean(now)?;
        Ok(super::MaintenanceOutcome {
            dropped_regions: Vec::new(),
            done,
        })
    }

    fn discard_region(&self, region: RegionId, now: Nanos) -> Result<Nanos, CacheError> {
        check_region_read(region, 0, 0, self.region_size, self.num_regions)?;
        if self.punch_on_discard {
            self.fs
                .punch_hole(self.ino, self.offset(region), self.region_size as u64, now)?;
        }
        // Otherwise the filesystem reclaims old blocks when the region is
        // overwritten, exactly as stock CacheLib-on-F2FS behaves.
        Ok(now)
    }

    fn host_bytes_written(&self) -> u64 {
        self.host_bytes.get()
    }

    fn media_bytes_written(&self) -> u64 {
        self.fs.device().stats().media_bytes_written
    }

    fn label(&self) -> &'static str {
        "File-Cache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f2fs_lite::FsConfig;

    fn backend() -> FileBackend {
        let fs = Arc::new(FileSystem::format(FsConfig::small_test()));
        // 16 KiB regions; filesystem holds 416 blocks → plenty for 8.
        FileBackend::create(fs, "cache", 4 * BLOCK_SIZE, 8, Nanos::ZERO).unwrap()
    }

    #[test]
    fn write_read_round_trip() {
        let b = backend();
        let mut image = vec![0u8; b.region_size()];
        for (i, byte) in image.iter_mut().enumerate() {
            *byte = (i % 199) as u8;
        }
        let t = b.write_region(RegionId(2), &image, Nanos::ZERO).unwrap();
        let mut out = vec![0u8; 77];
        b.read(RegionId(2), 5000, &mut out, t).unwrap();
        assert_eq!(out[..], image[5000..5077]);
    }

    #[test]
    fn oversized_cache_rejected() {
        let fs = Arc::new(FileSystem::format(FsConfig::small_test()));
        let err = FileBackend::create(fs, "cache", 4 * BLOCK_SIZE, 10_000, Nanos::ZERO);
        assert!(matches!(err, Err(CacheError::Io(_))));
    }

    #[test]
    fn overwrite_lands_in_filesystem_log() {
        let b = backend();
        let image = vec![7u8; b.region_size()];
        let t = b.write_region(RegionId(0), &image, Nanos::ZERO).unwrap();
        let t = b.write_region(RegionId(0), &image, t).unwrap();
        let fs_stats = b.filesystem().stats();
        assert_eq!(fs_stats.data_blocks_written, 8);
        assert!(b.media_bytes_written() >= b.host_bytes_written());
        let _ = t;
    }

    #[test]
    fn punch_on_discard_releases_filesystem_space() {
        let fs = Arc::new(FileSystem::format(FsConfig::small_test()));
        let b = FileBackend::create(fs.clone(), "cache", 4 * BLOCK_SIZE, 8, Nanos::ZERO)
            .unwrap()
            .with_punch_on_discard(true);
        let image = vec![7u8; b.region_size()];
        let t = b.write_region(RegionId(0), &image, Nanos::ZERO).unwrap();
        let free_before = fs.free_bytes();
        b.discard_region(RegionId(0), t).unwrap();
        assert!(fs.free_bytes() > free_before, "no space reclaimed");
    }

    #[test]
    fn label_and_wa() {
        let b = backend();
        assert_eq!(b.label(), "File-Cache");
        assert_eq!(b.write_amplification(), 1.0); // nothing written yet
    }
}
