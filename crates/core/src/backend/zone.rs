//! Zone-Cache backend: one region per zone.
//!
//! The cache's management unit is matched to the device's (§3.2): a region
//! flush writes an entire zone, region eviction is a zone reset. No extra
//! indexing, no migration, **zero write amplification and no GC by
//! construction** — at the price of a very large region whose costs the
//! engine's buffer/eviction path surfaces (Fig. 3).

use std::collections::VecDeque;
use std::sync::Arc;

use sim::trace::{self, EventKind};
use sim::{Counter, Nanos, BLOCK_SIZE};
use zns::{DieService, ZnsDevice, ZoneId, ZoneState};

use crate::types::{CacheError, RegionId};

use super::{check_region_read, check_region_write, RegionBackend, RegionHealth};

/// Default number of zone-append commands kept in flight during a region
/// flush. Deep enough to keep every die of the stripe busy back-to-back.
pub const DEFAULT_APPEND_DEPTH: usize = 16;

/// Region `i` lives in zone `i`.
pub struct ZoneBackend {
    dev: Arc<ZnsDevice>,
    num_regions: u32,
    append_depth: usize,
    host_bytes: Counter,
}

impl ZoneBackend {
    /// Uses every zone of the device as a region.
    pub fn new(dev: Arc<ZnsDevice>) -> Self {
        let num_regions = dev.num_zones();
        ZoneBackend {
            dev,
            num_regions,
            append_depth: DEFAULT_APPEND_DEPTH,
            host_bytes: Counter::new(),
        }
    }

    /// Sets the zone-append queue depth used by region flushes. A depth of
    /// 1 degenerates to synchronous QD1 appends (each command issued at
    /// the completion instant of its predecessor).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_append_depth(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "append depth must be at least 1");
        self.append_depth = depth;
        self
    }

    /// Restricts the cache to the first `num_regions` zones (capacity
    /// matched comparisons use fewer zones than the device has).
    ///
    /// # Panics
    ///
    /// Panics if `num_regions` exceeds the zone count.
    pub fn with_zone_limit(mut self, num_regions: u32) -> Self {
        assert!(
            num_regions >= 1 && num_regions <= self.dev.num_zones(),
            "limit {num_regions} exceeds {} zones",
            self.dev.num_zones()
        );
        self.num_regions = num_regions;
        self
    }

    /// The underlying zoned device.
    pub fn device(&self) -> &Arc<ZnsDevice> {
        &self.dev
    }

    fn zone(&self, region: RegionId) -> ZoneId {
        ZoneId(region.0)
    }

    /// Resets a zone left mid-range by a failed flush (earlier appends of
    /// the deep queue land even when a later one faults; a torn append
    /// persists a prefix). Without this the debris pins one of the
    /// device's scarce open/active zone slots until the region is next
    /// evicted — and a region the engine *quarantines* is never evicted,
    /// so enough failed flushes would wedge the whole device. Best
    /// effort: a zone that will not reset (degraded, or the reset itself
    /// faults) is left for `discard_region` to reclaim later.
    fn clear_debris(&self, zone: ZoneId, now: Nanos) {
        if let Ok(info) = self.dev.zone_info(zone) {
            if info.write_pointer != 0
                && info.write_pointer < info.capacity
                && info.state.is_writable()
            {
                let _ = self.dev.reset(zone, now);
            }
        }
    }
}

impl RegionBackend for ZoneBackend {
    fn region_size(&self) -> usize {
        self.dev.zone_cap_bytes() as usize
    }

    fn num_regions(&self) -> u32 {
        self.num_regions
    }

    fn region_health(&self, region: RegionId) -> RegionHealth {
        // Zone state maps 1:1 onto region health: a read-only zone still
        // serves its frozen contents (salvageable), an offline zone is
        // gone. Probe errors mean the region id is out of range, which
        // the shape checks reject elsewhere.
        match self.dev.zone_state(self.zone(region)) {
            Ok(ZoneState::ReadOnly) => RegionHealth::Degraded,
            Ok(ZoneState::Offline) => RegionHealth::Dead,
            _ => RegionHealth::Healthy,
        }
    }

    fn readable_bytes(&self, region: RegionId) -> usize {
        // The zone's write pointer bounds what a scan may read — a torn
        // zone write leaves a durable prefix below the pointer.
        match self.dev.zone_info(self.zone(region)) {
            Ok(info) => (info.write_pointer as usize * BLOCK_SIZE).min(self.region_size()),
            Err(_) => 0,
        }
    }

    fn write_region(
        &self,
        region: RegionId,
        data: &[u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        check_region_write(region, data.len(), self.region_size(), self.num_regions)?;
        let zone = self.zone(region);
        // A flush owns its zone from a reset pointer. If a previous
        // attempt left debris behind (its cleanup reset itself faulted),
        // clear it now so the retry is idempotent. A Full zone stays an
        // error: rewriting without a discard is a protocol violation, not
        // a retry.
        self.clear_debris(zone, now);
        // The region image goes down as a stream of zone-append commands,
        // one stripe-width chunk (one page per die) each, `append_depth`
        // of them in flight: command i is issued at the completion
        // instant of command i-depth. Appends are queued page programs,
        // so the dies of the stripe service successive commands
        // back-to-back while reads landing between pages pay only the
        // cheap `program_suspend` fee. Writing exactly the zone capacity
        // leaves the zone Full; the device releases its open/active
        // resources automatically.
        let chunk_bytes = (self.dev.layout().stripe_dies() as usize).max(1) * BLOCK_SIZE;
        let mut window: VecDeque<Nanos> = VecDeque::with_capacity(self.append_depth);
        let mut service: Vec<DieService> = Vec::new();
        let mut expect_blocks = 0u64;
        let mut done = now;
        for chunk in data.chunks(chunk_bytes) {
            let issue = if window.len() >= self.append_depth {
                now.max(window.pop_front().expect("window is non-empty"))
            } else {
                now
            };
            let (assigned, t, svc) = match self.dev.append_with_service(zone, chunk, issue) {
                Ok(r) => r,
                Err(e) => {
                    // The chunks already landed are now garbage; release
                    // the zone's open/active slot before surfacing the
                    // fault so a flush that fails through the whole retry
                    // budget (quarantined region) cannot pin it forever.
                    self.clear_debris(zone, issue);
                    return Err(e.into());
                }
            };
            // Appends pick their own landing offset; a region flush owns
            // the whole zone from a reset pointer, so anything else means
            // the slot was not actually clean.
            if assigned != expect_blocks {
                return Err(CacheError::Internal(format!(
                    "zone {} append landed at block {assigned}, expected {expect_blocks}",
                    zone.0
                )));
            }
            expect_blocks += (chunk.len() / BLOCK_SIZE) as u64;
            done = done.max(t);
            window.push_back(t);
            for s in svc {
                match service.iter_mut().find(|agg| agg.die == s.die) {
                    Some(agg) => {
                        agg.start = agg.start.min(s.start);
                        agg.end = agg.end.max(s.end);
                    }
                    None => service.push(s),
                }
            }
        }
        // One aggregated service-window event per die per region flush:
        // the overlap between these windows is the trace evidence that the
        // flush kept the stripe's dies concurrently busy.
        for s in &service {
            trace::emit(EventKind::DieService, s.start, s.die as u64, s.end.0);
        }
        self.host_bytes.add(data.len() as u64);
        Ok(done)
    }

    fn read(
        &self,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        check_region_read(region, offset, buf.len(), self.region_size(), self.num_regions)?;
        let first = offset / BLOCK_SIZE;
        let last = (offset + buf.len() - 1) / BLOCK_SIZE;
        let mut cover = vec![0u8; (last - first + 1) * BLOCK_SIZE];
        let done = self
            .dev
            .read(self.zone(region), first as u64, &mut cover, now)?;
        let start = offset - first * BLOCK_SIZE;
        buf.copy_from_slice(&cover[start..start + buf.len()]);
        Ok(done)
    }

    fn discard_region(&self, region: RegionId, now: Nanos) -> Result<Nanos, CacheError> {
        check_region_read(region, 0, 0, self.region_size(), self.num_regions)?;
        // Region eviction == zone reset: no data migration, ever. The
        // reset completes quickly from the host's view; the erase occupies
        // the zone's dies in the background.
        self.dev.reset(self.zone(region), now)?;
        Ok(now)
    }

    fn host_bytes_written(&self) -> u64 {
        self.host_bytes.get()
    }

    fn media_bytes_written(&self) -> u64 {
        self.dev.stats().media_bytes_written
    }

    fn label(&self) -> &'static str {
        "Zone-Cache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zns::ZnsConfig;

    fn backend() -> ZoneBackend {
        ZoneBackend::new(Arc::new(ZnsDevice::new(ZnsConfig::small_test())))
    }

    #[test]
    fn region_size_is_zone_capacity() {
        let b = backend();
        assert_eq!(b.region_size() as u64, b.device().zone_cap_bytes());
        assert_eq!(b.num_regions(), b.device().num_zones());
    }

    #[test]
    fn whole_zone_write_then_read() {
        let b = backend();
        let mut image = vec![0u8; b.region_size()];
        for (i, byte) in image.iter_mut().enumerate() {
            *byte = (i % 241) as u8;
        }
        let t = b.write_region(RegionId(1), &image, Nanos::ZERO).unwrap();
        let mut out = vec![0u8; 1000];
        b.read(RegionId(1), 12345, &mut out, t).unwrap();
        assert_eq!(out[..], image[12345..13345]);
    }

    #[test]
    fn evict_reset_rewrite_cycle_has_unit_wa() {
        let b = backend();
        let image = vec![9u8; b.region_size()];
        let mut t = Nanos::ZERO;
        for _ in 0..3 {
            t = b.write_region(RegionId(0), &image, t).unwrap();
            t = b.discard_region(RegionId(0), t).unwrap();
        }
        // Zero WA, GC-free: media writes == host writes exactly.
        assert_eq!(b.media_bytes_written(), b.host_bytes_written());
        assert_eq!(b.write_amplification(), 1.0);
        assert_eq!(b.device().stats().zone_resets, 3);
    }

    #[test]
    fn rewriting_without_discard_fails() {
        // The engine must discard (reset) before reusing a zone; a direct
        // rewrite violates the sequential-write constraint.
        let b = backend();
        let image = vec![1u8; b.region_size()];
        let t = b.write_region(RegionId(2), &image, Nanos::ZERO).unwrap();
        assert!(b.write_region(RegionId(2), &image, t).is_err());
    }

    #[test]
    fn deep_queue_flush_beats_qd1() {
        // Same device timing, same image: the deep-queue flush overlaps
        // per-die service windows, QD1 (each append issued only at its
        // predecessor's completion) cannot — so the deep queue must
        // finish strictly earlier on any stripe wider than one die.
        let deep = backend();
        let qd1 = ZoneBackend::new(Arc::new(ZnsDevice::new(ZnsConfig::small_test())))
            .with_append_depth(1);
        assert!(deep.device().layout().stripe_dies() > 1);
        let image = vec![3u8; deep.region_size()];
        let t_deep = deep.write_region(RegionId(0), &image, Nanos::ZERO).unwrap();
        let t_qd1 = qd1.write_region(RegionId(0), &image, Nanos::ZERO).unwrap();
        assert!(
            t_deep < t_qd1,
            "deep queue {t_deep:?} must beat QD1 {t_qd1:?}"
        );
        // Either way the image must be fully readable.
        let mut out = vec![0u8; 512];
        deep.read(RegionId(0), 100, &mut out, t_deep).unwrap();
        assert_eq!(out[..], image[100..612]);
    }

    #[test]
    fn failed_flush_is_retryable() {
        // A deep-queue flush is not atomic: when one append faults (or
        // tears), the earlier commands have already landed and the zone is
        // left with a mid-range write pointer. The retry must start from a
        // clean slot, not trip the landed-at-nonzero invariant.
        let inj = Arc::new(sim::fault::FaultInjector::default());
        let b = ZoneBackend::new(Arc::new(
            ZnsDevice::new(ZnsConfig::small_test()).with_fault_injector(Arc::clone(&inj)),
        ));
        let image = vec![7u8; b.region_size()];
        for spec in [
            sim::fault::FaultSpec::torn_writes(1, 0.5),
            sim::fault::FaultSpec::fail_writes(1),
        ] {
            inj.push(spec);
            let err = b.write_region(RegionId(0), &image, Nanos::ZERO).unwrap_err();
            assert!(
                matches!(err, CacheError::Io(_)),
                "fault must surface as retryable Io, got {err:?}"
            );
            let t = b
                .write_region(RegionId(0), &image, Nanos::ZERO)
                .expect("retry after failed flush");
            let mut out = vec![0u8; 512];
            b.read(RegionId(0), 4096, &mut out, t).unwrap();
            assert_eq!(out[..], image[4096..4608]);
            b.discard_region(RegionId(0), t).unwrap();
        }
    }

    #[test]
    fn zone_limit_respected() {
        let b = backend().with_zone_limit(4);
        assert_eq!(b.num_regions(), 4);
        let image = vec![0u8; b.region_size()];
        assert!(b.write_region(RegionId(4), &image, Nanos::ZERO).is_err());
    }
}
