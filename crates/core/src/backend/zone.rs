//! Zone-Cache backend: one region per zone.
//!
//! The cache's management unit is matched to the device's (§3.2): a region
//! flush writes an entire zone, region eviction is a zone reset. No extra
//! indexing, no migration, **zero write amplification and no GC by
//! construction** — at the price of a very large region whose costs the
//! engine's buffer/eviction path surfaces (Fig. 3).

use std::sync::Arc;

use sim::{Counter, Nanos, BLOCK_SIZE};
use zns::{ZnsDevice, ZoneId, ZoneState};

use crate::types::{CacheError, RegionId};

use super::{check_region_read, check_region_write, RegionBackend, RegionHealth};

/// Region `i` lives in zone `i`.
pub struct ZoneBackend {
    dev: Arc<ZnsDevice>,
    num_regions: u32,
    host_bytes: Counter,
}

impl ZoneBackend {
    /// Uses every zone of the device as a region.
    pub fn new(dev: Arc<ZnsDevice>) -> Self {
        let num_regions = dev.num_zones();
        ZoneBackend {
            dev,
            num_regions,
            host_bytes: Counter::new(),
        }
    }

    /// Restricts the cache to the first `num_regions` zones (capacity
    /// matched comparisons use fewer zones than the device has).
    ///
    /// # Panics
    ///
    /// Panics if `num_regions` exceeds the zone count.
    pub fn with_zone_limit(mut self, num_regions: u32) -> Self {
        assert!(
            num_regions >= 1 && num_regions <= self.dev.num_zones(),
            "limit {num_regions} exceeds {} zones",
            self.dev.num_zones()
        );
        self.num_regions = num_regions;
        self
    }

    /// The underlying zoned device.
    pub fn device(&self) -> &Arc<ZnsDevice> {
        &self.dev
    }

    fn zone(&self, region: RegionId) -> ZoneId {
        ZoneId(region.0)
    }
}

impl RegionBackend for ZoneBackend {
    fn region_size(&self) -> usize {
        self.dev.zone_cap_bytes() as usize
    }

    fn num_regions(&self) -> u32 {
        self.num_regions
    }

    fn region_health(&self, region: RegionId) -> RegionHealth {
        // Zone state maps 1:1 onto region health: a read-only zone still
        // serves its frozen contents (salvageable), an offline zone is
        // gone. Probe errors mean the region id is out of range, which
        // the shape checks reject elsewhere.
        match self.dev.zone_state(self.zone(region)) {
            Ok(ZoneState::ReadOnly) => RegionHealth::Degraded,
            Ok(ZoneState::Offline) => RegionHealth::Dead,
            _ => RegionHealth::Healthy,
        }
    }

    fn readable_bytes(&self, region: RegionId) -> usize {
        // The zone's write pointer bounds what a scan may read — a torn
        // zone write leaves a durable prefix below the pointer.
        match self.dev.zone_info(self.zone(region)) {
            Ok(info) => (info.write_pointer as usize * BLOCK_SIZE).min(self.region_size()),
            Err(_) => 0,
        }
    }

    fn write_region(
        &self,
        region: RegionId,
        data: &[u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        check_region_write(region, data.len(), self.region_size(), self.num_regions)?;
        // Writing exactly the zone capacity leaves the zone Full; the
        // device releases its open/active resources automatically.
        let done = self.dev.write(self.zone(region), data, now)?;
        self.host_bytes.add(data.len() as u64);
        Ok(done)
    }

    fn read(
        &self,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        check_region_read(region, offset, buf.len(), self.region_size(), self.num_regions)?;
        let first = offset / BLOCK_SIZE;
        let last = (offset + buf.len() - 1) / BLOCK_SIZE;
        let mut cover = vec![0u8; (last - first + 1) * BLOCK_SIZE];
        let done = self
            .dev
            .read(self.zone(region), first as u64, &mut cover, now)?;
        let start = offset - first * BLOCK_SIZE;
        buf.copy_from_slice(&cover[start..start + buf.len()]);
        Ok(done)
    }

    fn discard_region(&self, region: RegionId, now: Nanos) -> Result<Nanos, CacheError> {
        check_region_read(region, 0, 0, self.region_size(), self.num_regions)?;
        // Region eviction == zone reset: no data migration, ever. The
        // reset completes quickly from the host's view; the erase occupies
        // the zone's dies in the background.
        self.dev.reset(self.zone(region), now)?;
        Ok(now)
    }

    fn host_bytes_written(&self) -> u64 {
        self.host_bytes.get()
    }

    fn media_bytes_written(&self) -> u64 {
        self.dev.stats().media_bytes_written
    }

    fn label(&self) -> &'static str {
        "Zone-Cache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zns::ZnsConfig;

    fn backend() -> ZoneBackend {
        ZoneBackend::new(Arc::new(ZnsDevice::new(ZnsConfig::small_test())))
    }

    #[test]
    fn region_size_is_zone_capacity() {
        let b = backend();
        assert_eq!(b.region_size() as u64, b.device().zone_cap_bytes());
        assert_eq!(b.num_regions(), b.device().num_zones());
    }

    #[test]
    fn whole_zone_write_then_read() {
        let b = backend();
        let mut image = vec![0u8; b.region_size()];
        for (i, byte) in image.iter_mut().enumerate() {
            *byte = (i % 241) as u8;
        }
        let t = b.write_region(RegionId(1), &image, Nanos::ZERO).unwrap();
        let mut out = vec![0u8; 1000];
        b.read(RegionId(1), 12345, &mut out, t).unwrap();
        assert_eq!(out[..], image[12345..13345]);
    }

    #[test]
    fn evict_reset_rewrite_cycle_has_unit_wa() {
        let b = backend();
        let image = vec![9u8; b.region_size()];
        let mut t = Nanos::ZERO;
        for _ in 0..3 {
            t = b.write_region(RegionId(0), &image, t).unwrap();
            t = b.discard_region(RegionId(0), t).unwrap();
        }
        // Zero WA, GC-free: media writes == host writes exactly.
        assert_eq!(b.media_bytes_written(), b.host_bytes_written());
        assert_eq!(b.write_amplification(), 1.0);
        assert_eq!(b.device().stats().zone_resets, 3);
    }

    #[test]
    fn rewriting_without_discard_fails() {
        // The engine must discard (reset) before reusing a zone; a direct
        // rewrite violates the sequential-write constraint.
        let b = backend();
        let image = vec![1u8; b.region_size()];
        let t = b.write_region(RegionId(2), &image, Nanos::ZERO).unwrap();
        assert!(b.write_region(RegionId(2), &image, t).is_err());
    }

    #[test]
    fn zone_limit_respected() {
        let b = backend().with_zone_limit(4);
        assert_eq!(b.num_regions(), 4);
        let image = vec![0u8; b.region_size()];
        assert!(b.write_region(RegionId(4), &image, Nanos::ZERO).is_err());
    }
}
