//! Storage backends: one per scheme in the paper's Fig. 1.
//!
//! The cache engine is backend-agnostic; each backend realizes the region
//! abstraction on a different storage arrangement:
//!
//! * [`BlockBackend`] — regions laid out linearly on a conventional block
//!   SSD (**Block-Cache**, the baseline).
//! * [`FileBackend`] — regions inside one large file on `f2fs-lite`
//!   (**File-Cache**, §3.1).
//! * [`ZoneBackend`] — one region per zone; eviction is a zone reset
//!   (**Zone-Cache**, §3.2).
//! * [`MiddleLayerBackend`] — the paper's middle layer: flexible-size
//!   regions mapped onto zones with an ordered map + per-zone bitmaps and
//!   application-level GC (**Region-Cache**, §3.3), including the §3.4
//!   co-design hook ([`GcMode::Hinted`]).

mod block;
mod file;
mod middle;
mod zone;

pub use block::BlockBackend;
pub use file::FileBackend;
pub use middle::{GcMode, MiddleConfig, MiddleLayerBackend, MiddleStatsSnapshot};
pub use zone::{ZoneBackend, DEFAULT_APPEND_DEPTH};

use sim::Nanos;

use crate::types::{CacheError, RegionId};

/// Health of the storage beneath one region, as reported by
/// [`RegionBackend::region_health`]. The scrubber uses this to salvage
/// live data off degrading media before it goes dark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RegionHealth {
    /// Fully serviceable.
    #[default]
    Healthy,
    /// Still readable but no longer writable or erasable (a zone that
    /// fell to the spec's read-only state): live objects must be
    /// migrated off before the media degrades further.
    Degraded,
    /// Gone dark (an offline zone): reads fail too, nothing can be
    /// salvaged, the region is pure lost capacity.
    Dead,
}

/// Result of a backend maintenance (GC) pass.
#[derive(Debug, Default)]
pub struct MaintenanceOutcome {
    /// Regions the backend discarded instead of migrating (hinted GC).
    /// The engine must drop their index entries and recycle the slots.
    pub dropped_regions: Vec<RegionId>,
    /// Completion time of the maintenance work.
    pub done: Nanos,
}

/// A fixed-size-region storage backend under simulated time.
///
/// The engine writes whole regions ([`RegionBackend::write_region`]), reads
/// arbitrary byte ranges within a region, and discards regions on eviction.
/// All methods are `&self`; backends synchronize internally.
pub trait RegionBackend: Send + Sync {
    /// Region size in bytes (fixed per backend instance).
    fn region_size(&self) -> usize;

    /// Number of region slots the cache may use.
    fn num_regions(&self) -> u32;

    /// Writes a full region image. `data.len()` must equal
    /// [`Self::region_size`].
    ///
    /// # Errors
    ///
    /// Backend-specific I/O failures; all indicate bugs or exhausted space.
    fn write_region(&self, region: RegionId, data: &[u8], now: Nanos)
        -> Result<Nanos, CacheError>;

    /// Reads `buf.len()` bytes from byte `offset` within a region.
    ///
    /// # Errors
    ///
    /// Reading a region that was never written, or past its end.
    fn read(
        &self,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError>;

    /// Bytes of a region that are durably readable right now — used by
    /// scan recovery to walk whatever survived a crash. Backends with
    /// partial-write visibility (zones expose a write pointer) override
    /// this; the default claims the whole region, and the scanner treats
    /// read failures as "nothing readable".
    fn readable_bytes(&self, _region: RegionId) -> usize {
        self.region_size()
    }

    /// How trustworthy a region's storage currently is. Backends whose
    /// media exposes degradation (zones report Read-Only/Offline states)
    /// override this; the default claims perfect health, in which case
    /// failures surface only through I/O errors.
    fn region_health(&self, _region: RegionId) -> RegionHealth {
        RegionHealth::Healthy
    }

    /// Releases a region's storage ahead of slot reuse (TRIM, zone reset,
    /// or mapping removal, depending on the scheme).
    ///
    /// # Errors
    ///
    /// Backend-specific I/O failures.
    fn discard_region(&self, region: RegionId, now: Nanos) -> Result<Nanos, CacheError>;

    /// Runs background maintenance (GC). `temperature` maps a region to a
    /// hotness score in `[0, 1]` (1 = most recently used); backends without
    /// GC ignore it.
    ///
    /// # Errors
    ///
    /// Backend-specific I/O failures.
    fn maintenance(
        &self,
        _now: Nanos,
        _temperature: &dyn Fn(RegionId) -> f64,
    ) -> Result<MaintenanceOutcome, CacheError> {
        Ok(MaintenanceOutcome::default())
    }

    /// Bytes the cache engine has written through this backend.
    fn host_bytes_written(&self) -> u64;

    /// Bytes physically written to the storage media beneath this backend
    /// (host + any GC at any layer). `media / host` is the end-to-end write
    /// amplification the paper's Table 1 reports.
    fn media_bytes_written(&self) -> u64;

    /// Scheme name for reports.
    fn label(&self) -> &'static str;

    /// End-to-end write amplification factor.
    fn write_amplification(&self) -> f64 {
        sim::stats::write_amplification(self.host_bytes_written(), self.media_bytes_written())
    }
}

/// Validates a region write's shape; shared by backends.
pub(crate) fn check_region_write(
    region: RegionId,
    len: usize,
    region_size: usize,
    num_regions: u32,
) -> Result<(), CacheError> {
    if region.0 >= num_regions {
        return Err(CacheError::Io(format!(
            "{region} out of range ({num_regions} regions)"
        )));
    }
    if len != region_size {
        return Err(CacheError::Io(format!(
            "region write of {len} bytes != region size {region_size}"
        )));
    }
    Ok(())
}

/// Validates a region read's shape; shared by backends.
pub(crate) fn check_region_read(
    region: RegionId,
    offset: usize,
    len: usize,
    region_size: usize,
    num_regions: u32,
) -> Result<(), CacheError> {
    if region.0 >= num_regions {
        return Err(CacheError::Io(format!(
            "{region} out of range ({num_regions} regions)"
        )));
    }
    if offset + len > region_size {
        return Err(CacheError::Io(format!(
            "read of {len}@{offset} crosses region size {region_size}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_shape_validation() {
        assert!(check_region_write(RegionId(0), 100, 100, 4).is_ok());
        assert!(check_region_write(RegionId(4), 100, 100, 4).is_err());
        assert!(check_region_write(RegionId(0), 99, 100, 4).is_err());
    }

    #[test]
    fn read_shape_validation() {
        assert!(check_region_read(RegionId(0), 50, 50, 100, 4).is_ok());
        assert!(check_region_read(RegionId(0), 51, 50, 100, 4).is_err());
        assert!(check_region_read(RegionId(9), 0, 1, 100, 4).is_err());
    }
}
