//! Block-Cache backend: regions on a conventional block device.
//!
//! Regions are laid out contiguously from LBA 0, exactly how CacheLib uses
//! a raw regular SSD. Region eviction TRIMs the range so the device's FTL
//! can reclaim the space without migrating dead data — the most favorable
//! configuration for the baseline.

use std::sync::Arc;

use sim::{BlockDevice, Counter, Lba, Nanos, BLOCK_SIZE};

use crate::types::{CacheError, RegionId};

use super::{check_region_read, check_region_write, RegionBackend};

type MediaFn = Box<dyn Fn() -> u64 + Send + Sync>;

/// Regions striped linearly over a [`BlockDevice`].
pub struct BlockBackend {
    dev: Arc<dyn BlockDevice>,
    region_blocks: u64,
    num_regions: u32,
    host_bytes: Counter,
    media_fn: Option<MediaFn>,
}

impl BlockBackend {
    /// Creates a backend of as many regions as fit the device.
    ///
    /// # Panics
    ///
    /// Panics if `region_size` is zero, misaligned, or larger than the
    /// device — configuration bugs.
    pub fn new(dev: Arc<dyn BlockDevice>, region_size: usize) -> Self {
        assert!(
            region_size > 0 && region_size.is_multiple_of(BLOCK_SIZE),
            "region size {region_size} must be a positive multiple of {BLOCK_SIZE}"
        );
        let region_blocks = (region_size / BLOCK_SIZE) as u64;
        let num_regions = (dev.block_count() / region_blocks) as u32;
        assert!(num_regions > 0, "device smaller than one region");
        BlockBackend {
            dev,
            region_blocks,
            num_regions,
            host_bytes: Counter::new(),
            media_fn: None,
        }
    }

    /// Caps the usable regions below the natural fit (to model reserved
    /// space in capacity-matched comparisons).
    ///
    /// # Panics
    ///
    /// Panics if `num_regions` exceeds what the device can hold.
    pub fn with_region_limit(mut self, num_regions: u32) -> Self {
        assert!(
            num_regions >= 1 && num_regions <= self.num_regions,
            "limit {num_regions} exceeds device capacity {}",
            self.num_regions
        );
        self.num_regions = num_regions;
        self
    }

    /// Attaches a media-bytes counter (e.g. the FTL's flash write total) so
    /// end-to-end write amplification includes device GC.
    pub fn with_media_counter(mut self, f: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        self.media_fn = Some(Box::new(f));
        self
    }

    fn base_lba(&self, region: RegionId) -> Lba {
        Lba(region.0 as u64 * self.region_blocks)
    }
}

impl RegionBackend for BlockBackend {
    fn region_size(&self) -> usize {
        (self.region_blocks as usize) * BLOCK_SIZE
    }

    fn num_regions(&self) -> u32 {
        self.num_regions
    }

    fn write_region(
        &self,
        region: RegionId,
        data: &[u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        check_region_write(region, data.len(), self.region_size(), self.num_regions)?;
        let done = self.dev.write(self.base_lba(region), data, now)?;
        self.host_bytes.add(data.len() as u64);
        Ok(done)
    }

    fn read(
        &self,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        check_region_read(region, offset, buf.len(), self.region_size(), self.num_regions)?;
        // Read the covering 4 KiB blocks, then copy the requested range.
        let first_block = offset / BLOCK_SIZE;
        let last_block = (offset + buf.len() - 1) / BLOCK_SIZE;
        let nblocks = last_block - first_block + 1;
        let mut cover = vec![0u8; nblocks * BLOCK_SIZE];
        let lba = self.base_lba(region).offset(first_block as u64);
        let done = self.dev.read(lba, &mut cover, now)?;
        let start = offset - first_block * BLOCK_SIZE;
        buf.copy_from_slice(&cover[start..start + buf.len()]);
        Ok(done)
    }

    fn discard_region(&self, region: RegionId, now: Nanos) -> Result<Nanos, CacheError> {
        check_region_read(region, 0, 0, self.region_size(), self.num_regions)?;
        Ok(self.dev.trim(self.base_lba(region), self.region_blocks, now)?)
    }

    fn host_bytes_written(&self) -> u64 {
        self.host_bytes.get()
    }

    fn media_bytes_written(&self) -> u64 {
        match &self.media_fn {
            Some(f) => f(),
            None => self.host_bytes.get(),
        }
    }

    fn label(&self) -> &'static str {
        "Block-Cache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::RamDisk;

    fn backend() -> BlockBackend {
        // 64-block RAM disk, 4-block (16 KiB) regions → 16 regions.
        BlockBackend::new(Arc::new(RamDisk::new(64)), 4 * BLOCK_SIZE)
    }

    #[test]
    fn geometry() {
        let b = backend();
        assert_eq!(b.num_regions(), 16);
        assert_eq!(b.region_size(), 4 * BLOCK_SIZE);
        assert_eq!(b.label(), "Block-Cache");
    }

    #[test]
    fn write_read_round_trip_unaligned() {
        let b = backend();
        let mut image = vec![0u8; b.region_size()];
        for (i, byte) in image.iter_mut().enumerate() {
            *byte = (i % 251) as u8;
        }
        let t = b.write_region(RegionId(3), &image, Nanos::ZERO).unwrap();
        // Unaligned read crossing a block boundary.
        let mut out = vec![0u8; 100];
        b.read(RegionId(3), 4000, &mut out, t).unwrap();
        assert_eq!(out[..], image[4000..4100]);
        assert_eq!(b.host_bytes_written(), b.region_size() as u64);
    }

    #[test]
    fn shape_violations_rejected() {
        let b = backend();
        let short = vec![0u8; 10];
        assert!(b.write_region(RegionId(0), &short, Nanos::ZERO).is_err());
        let image = vec![0u8; b.region_size()];
        assert!(b.write_region(RegionId(16), &image, Nanos::ZERO).is_err());
        let mut buf = vec![0u8; 8];
        assert!(b
            .read(RegionId(0), b.region_size() - 4, &mut buf, Nanos::ZERO)
            .is_err());
    }

    #[test]
    fn media_counter_hook() {
        let b = backend().with_media_counter(|| 12345);
        assert_eq!(b.media_bytes_written(), 12345);
    }

    #[test]
    fn region_limit_caps_capacity() {
        let b = backend().with_region_limit(5);
        assert_eq!(b.num_regions(), 5);
        let image = vec![0u8; b.region_size()];
        assert!(b.write_region(RegionId(5), &image, Nanos::ZERO).is_err());
    }

    #[test]
    fn discard_is_accepted() {
        let b = backend();
        let image = vec![1u8; b.region_size()];
        let t = b.write_region(RegionId(0), &image, Nanos::ZERO).unwrap();
        b.discard_region(RegionId(0), t).unwrap();
    }
}
