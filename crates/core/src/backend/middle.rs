//! Region-Cache backend: the paper's middle layer (§3.3).
//!
//! Translates flexible, cache-friendly region sizes onto fixed-size zones:
//!
//! * an **ordered map** from region id to `(zone, slot)` — the paper's
//!   "mapping (e.g., an ordered map)",
//! * a **per-zone validity bitmap** — 64 bits covers a 1024 MiB zone of
//!   16 MiB regions, exactly the paper's cost estimate,
//! * **concurrent open zones** — region flushes round-robin across several
//!   open zones,
//! * **application-level GC** — a maintenance pass that keeps a floor of
//!   empty zones (paper default: 8) by migrating the valid regions out of
//!   mostly-dead zones (victim threshold: 20% valid) and resetting them.
//!
//! The §3.4 co-design is implemented as [`GcMode::Hinted`]: the GC asks the
//! cache for each victim region's temperature and *drops* cold regions
//! instead of migrating them — the cache merely loses some already-cold
//! objects, and WA returns to ≈ 1.
//
// lock-ok(file): this layer's whole job is translating under its mapping
// lock — `state` must stay held across the device call so the slot cursor
// it hands out and the device write pointer advance in lockstep (the
// debug_assert on every write checks exactly that). The engine never
// holds its own locks when it calls in here, and the simulated device
// computes in-memory, so there is no blocking I/O under the lock.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim::{Counter, Nanos, BLOCK_SIZE};
use zns::{ZnsDevice, ZoneId, ZoneState};

use crate::types::{CacheError, RegionId};

use super::{
    check_region_read, check_region_write, MaintenanceOutcome, RegionBackend, RegionHealth,
};

/// Zone GC strategy.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum GcMode {
    /// Migrate every valid region out of the victim (the paper's default
    /// middle layer).
    Migrate,
    /// Co-design (§3.4): consult cache temperature and drop regions colder
    /// than `cold_cutoff` (in `[0,1]`) instead of migrating them.
    Hinted {
        /// Temperature below which a region is dropped.
        cold_cutoff: f64,
    },
}

/// Configuration for [`MiddleLayerBackend`].
#[derive(Clone, Debug)]
pub struct MiddleConfig {
    /// Region size in bytes (multiple of 4 KiB, at most one zone).
    pub region_size: usize,
    /// Region slots exposed to the cache. The gap between this and the
    /// device's total slots is the scheme's over-provisioning for GC.
    pub user_regions: u32,
    /// GC keeps at least this many empty zones (paper: 8).
    pub min_empty_zones: u32,
    /// Preferred victims have at most this fraction of valid slots
    /// (paper: 20%).
    pub victim_valid_ratio: f64,
    /// Zones written concurrently.
    pub concurrent_open_zones: u32,
    /// Use the NVMe *zone append* command instead of positioned writes:
    /// the device assigns the in-zone location and returns it (the paper's
    /// §2.2 "write or append"). Semantically identical here because the
    /// layer tracks slots, but it exercises the append interface and
    /// matches how a multi-writer host would drive the device.
    pub use_append: bool,
    /// GC strategy.
    pub gc_mode: GcMode,
}

impl MiddleConfig {
    /// A profile for [`zns::ZnsConfig::small_test`] devices: 16 KiB regions,
    /// 8 slots/zone, 16 zones; 2 empty-zone floor, 96 user slots (75%).
    pub fn small_test() -> Self {
        MiddleConfig {
            region_size: 4 * BLOCK_SIZE,
            user_regions: 96,
            min_empty_zones: 2,
            victim_valid_ratio: 0.2,
            concurrent_open_zones: 2,
            use_append: false,
            gc_mode: GcMode::Migrate,
        }
    }
}

/// Point-in-time middle-layer statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiddleStatsSnapshot {
    /// Regions migrated by GC.
    pub gc_migrated_regions: u64,
    /// Regions dropped by hinted GC instead of migrating.
    pub gc_dropped_regions: u64,
    /// Victim zones collected.
    pub gc_cycles: u64,
}

struct MiddleState {
    /// region → (zone, slot). Ordered, per the paper.
    map: BTreeMap<u32, (u32, u32)>,
    /// Valid-slot bitmap per zone.
    bitmap: Vec<u64>,
    /// slot → region reverse lookup, per zone.
    slot_owner: Vec<Vec<Option<u32>>>,
    /// Next free slot per zone.
    next_slot: Vec<u32>,
    /// Zones currently accepting writes.
    open: Vec<u32>,
    /// Empty zones ready to open.
    free: VecDeque<u32>,
    /// Round-robin cursor over `open`.
    rr: usize,
}

/// The Region-Cache middle layer over a ZNS device.
pub struct MiddleLayerBackend {
    dev: Arc<ZnsDevice>,
    region_size: usize,
    region_blocks: u64,
    slots_per_zone: u32,
    user_regions: u32,
    min_empty_zones: u32,
    victim_valid_ratio: f64,
    concurrent_open: u32,
    use_append: bool,
    gc_mode: GcMode,
    state: Mutex<MiddleState>,
    host_bytes: Counter,
    gc_migrated: Counter,
    gc_dropped: Counter,
    gc_cycles: Counter,
}

impl MiddleLayerBackend {
    /// Builds the middle layer on a fresh device.
    ///
    /// # Panics
    ///
    /// Panics when the configuration cannot work: misaligned region size,
    /// more than 64 slots per zone (bitmap width), more open zones than the
    /// device allows, or too little over-provisioning left for GC.
    pub fn new(dev: Arc<ZnsDevice>, config: MiddleConfig) -> Self {
        assert!(
            config.region_size > 0 && config.region_size.is_multiple_of(BLOCK_SIZE),
            "region size must be a positive multiple of {BLOCK_SIZE}"
        );
        let region_blocks = (config.region_size / BLOCK_SIZE) as u64;
        let slots_per_zone = (dev.zone_cap_blocks() / region_blocks) as u32;
        assert!(
            slots_per_zone >= 1,
            "region larger than a zone; use ZoneBackend instead"
        );
        assert!(
            slots_per_zone <= 64,
            "more than 64 slots per zone breaks the one-word bitmap"
        );
        assert!(
            config.concurrent_open_zones >= 1
                && config.concurrent_open_zones <= dev.max_open_zones(),
            "concurrent open zones outside device limits"
        );
        let zones = dev.num_zones();
        let total_slots = zones as u64 * slots_per_zone as u64;
        let reserve = config.min_empty_zones as u64 * slots_per_zone as u64;
        assert!(
            (config.user_regions as u64) + reserve <= total_slots,
            "user regions {} + GC reserve {} exceed {} total slots",
            config.user_regions,
            reserve,
            total_slots
        );
        MiddleLayerBackend {
            dev,
            region_size: config.region_size,
            region_blocks,
            slots_per_zone,
            user_regions: config.user_regions,
            min_empty_zones: config.min_empty_zones.max(1),
            victim_valid_ratio: config.victim_valid_ratio.clamp(0.0, 1.0),
            concurrent_open: config.concurrent_open_zones,
            use_append: config.use_append,
            gc_mode: config.gc_mode,
            state: Mutex::new(MiddleState {
                map: BTreeMap::new(),
                bitmap: vec![0; zones as usize],
                slot_owner: vec![vec![None; slots_per_zone as usize]; zones as usize],
                next_slot: vec![0; zones as usize],
                open: Vec::new(),
                free: (0..zones).collect(),
                rr: 0,
            }),
            host_bytes: Counter::new(),
            gc_migrated: Counter::new(),
            gc_dropped: Counter::new(),
            gc_cycles: Counter::new(),
        }
    }

    /// The underlying zoned device.
    pub fn device(&self) -> &Arc<ZnsDevice> {
        &self.dev
    }

    /// Middle-layer statistics.
    pub fn stats(&self) -> MiddleStatsSnapshot {
        MiddleStatsSnapshot {
            gc_migrated_regions: self.gc_migrated.get(),
            gc_dropped_regions: self.gc_dropped.get(),
            gc_cycles: self.gc_cycles.get(),
        }
    }

    /// Region slots per zone.
    pub fn slots_per_zone(&self) -> u32 {
        self.slots_per_zone
    }

    /// Zones currently empty (free pool).
    pub fn empty_zones(&self) -> u32 {
        self.state.lock().free.len() as u32
    }

    fn unmap_locked(s: &mut MiddleState, region: u32) {
        if let Some((zone, slot)) = s.map.remove(&region) {
            s.bitmap[zone as usize] &= !(1u64 << slot);
            s.slot_owner[zone as usize][slot as usize] = None;
        }
    }

    /// Picks an open zone with a free slot, opening new zones as allowed.
    fn pick_zone_locked(&self, s: &mut MiddleState, now: Nanos) -> Result<u32, CacheError> {
        // Retire exhausted zones from the open set, finishing any that
        // still hold device resources (cap not a slot multiple).
        let exhausted: Vec<u32> = s
            .open
            .iter()
            .copied()
            .filter(|&z| s.next_slot[z as usize] >= self.slots_per_zone)
            .collect();
        for z in exhausted {
            s.open.retain(|&o| o != z);
            let zone = ZoneId(z);
            if self
                .dev
                .zone_state(zone)
                .map_err(|e| CacheError::Io(e.to_string()))?
                != ZoneState::Full
            {
                self.dev
                    .finish(zone, now)
                    .map_err(|e| CacheError::Io(e.to_string()))?;
            }
        }
        // Keep the open set at its configured width so writes actually
        // spread over multiple zones (the paper's "concurrent writing of
        // multiple zones"), leaving the GC reserve untouched.
        while (s.open.len() as u32) < self.concurrent_open
            && s.free.len() as u32 > self.min_empty_zones
        {
            let z = s.free.pop_front().expect("checked non-empty");
            s.open.push(z);
        }
        // Round-robin over open zones with room.
        if !s.open.is_empty() {
            let n = s.open.len();
            for i in 0..n {
                let z = s.open[(s.rr + i) % n];
                if s.next_slot[z as usize] < self.slots_per_zone {
                    s.rr = (s.rr + i + 1) % n;
                    return Ok(z);
                }
            }
        }
        // The open set is exhausted and the reserve floor blocks eager
        // opening; take one zone anyway if any is free at all.
        if (s.open.len() as u32) < self.concurrent_open {
            if let Some(z) = s.free.pop_front() {
                s.open.push(z);
                return Ok(z);
            }
        }
        Err(CacheError::Io(
            "middle layer: no zone available for writing (GC starved)".into(),
        ))
    }

    /// Places a region image into some open zone. `is_host` distinguishes
    /// cache flushes from GC migrations in the WA accounting. Host writes
    /// that find no free zone run forced (migrating) GC inline — the
    /// foreground-GC stall regular FTLs also suffer, surfacing here only
    /// when the background maintenance pass has fallen behind.
    fn place(
        &self,
        region: u32,
        data: &[u8],
        now: Nanos,
        is_host: bool,
    ) -> Result<Nanos, CacheError> {
        // Keep a safety floor of empty zones on the host path so GC always
        // has somewhere to migrate to. The engine's maintenance pass (which
        // can apply temperature hints) normally runs first; this inline
        // pass is the backstop when flushes outpace it.
        if is_host {
            let hot = |_: RegionId| 1.0;
            let floor = (self.min_empty_zones / 2).max(1);
            let mut guard = 0;
            while self.empty_zones() < floor && guard < 64 {
                let mut dropped = Vec::new();
                if self.gc_cycle(now, &hot, false, &mut dropped)?.is_none() {
                    break;
                }
                debug_assert!(dropped.is_empty());
                guard += 1;
            }
        }
        let mut s = self.state.lock();
        // A rewrite first invalidates the old location (paper: "the mapping
        // corresponding to this region will be deleted, and the bitmap
        // status of the zone will be updated").
        Self::unmap_locked(&mut s, region);
        let zone = self.pick_zone_locked(&mut s, now)?;
        let slot = s.next_slot[zone as usize];
        debug_assert_eq!(
            self.dev.zone_info(ZoneId(zone)).map(|i| i.write_pointer),
            Ok(slot as u64 * self.region_blocks),
            "slot cursor diverged from device write pointer"
        );
        let write = if self.use_append {
            // Zone append: the device picks the offset; verify it matches
            // the slot the layer reserved.
            self.dev.append(ZoneId(zone), data, now).map(|(offset, done)| {
                debug_assert_eq!(offset, slot as u64 * self.region_blocks);
                done
            })
        } else {
            self.dev.write(ZoneId(zone), data, now)
        };
        let done = match write {
            Ok(done) => done,
            Err(e) => {
                // A torn write leaves the device write pointer mid-slot;
                // positioned writes can never realign with the slot grid,
                // so retire the zone: cursor to the end, out of the open
                // set, finished if the device lets us. Its dead space is
                // reclaimed when GC resets the zone.
                let expected = slot as u64 * self.region_blocks;
                let state = self.dev.zone_state(ZoneId(zone));
                if matches!(state, Ok(ZoneState::ReadOnly | ZoneState::Offline)) {
                    // The zone degraded under the open set: it can never
                    // take another write, so drop it from rotation. Its
                    // live slots stay mapped — reads still work on a
                    // read-only zone, and the scrubber salvages them.
                    s.next_slot[zone as usize] = self.slots_per_zone;
                    s.open.retain(|&o| o != zone);
                } else if self.dev.zone_info(ZoneId(zone)).map(|i| i.write_pointer) != Ok(expected) {
                    s.next_slot[zone as usize] = self.slots_per_zone;
                    s.open.retain(|&o| o != zone);
                    if state != Ok(ZoneState::Full) {
                        // Best effort: a zone that will not finish still
                        // resets fine later.
                        let _ = self.dev.finish(ZoneId(zone), now);
                    }
                }
                return Err(CacheError::Io(e.to_string()));
            }
        };
        s.next_slot[zone as usize] = slot + 1;
        s.bitmap[zone as usize] |= 1u64 << slot;
        s.slot_owner[zone as usize][slot as usize] = Some(region);
        s.map.insert(region, (zone, slot));
        drop(s);
        if is_host {
            self.host_bytes.add(data.len() as u64);
        }
        Ok(done)
    }

    /// Selects a GC victim: a sealed zone with the fewest valid slots.
    ///
    /// In `threshold_only` mode (the background pass), only zones at or
    /// below the configured valid ratio qualify — the paper's "less than
    /// 20% of the zone capacity is occupied by the valid regions". Waiting
    /// for zones to decay below the threshold is what keeps the middle
    /// layer's WA low; the forced (foreground) pass ignores the threshold
    /// so writes can always make progress.
    fn pick_victim_locked(&self, s: &MiddleState, threshold_only: bool) -> Option<u32> {
        let mut best: Option<(u32, u32)> = None;
        for z in 0..self.dev.num_zones() {
            if s.open.contains(&z) || s.free.contains(&z) {
                continue;
            }
            if s.next_slot[z as usize] == 0 {
                continue; // never written
            }
            if matches!(
                self.dev.zone_state(ZoneId(z)),
                Ok(ZoneState::ReadOnly | ZoneState::Offline)
            ) {
                // A degraded zone can never be reset: it is lost capacity,
                // not a GC victim. Live slots on a read-only zone stay
                // readable until the cache-level scrubber salvages them.
                continue;
            }
            let valid = s.bitmap[z as usize].count_ones();
            if best.is_none_or(|(bv, _)| valid < bv) {
                best = Some((valid, z));
                if valid == 0 {
                    break;
                }
            }
        }
        let (valid, zone) = best?;
        if valid >= self.slots_per_zone {
            return None; // nothing reclaimable anywhere
        }
        if threshold_only {
            let threshold = (self.slots_per_zone as f64 * self.victim_valid_ratio).ceil() as u32;
            if valid > threshold {
                return None; // wait for more decay
            }
        }
        Some(zone)
    }

    /// Collects one victim zone. Returns regions dropped under hinted GC,
    /// or `None` if no victim was available.
    fn gc_cycle(
        &self,
        now: Nanos,
        temperature: &dyn Fn(RegionId) -> f64,
        threshold_only: bool,
        dropped: &mut Vec<RegionId>,
    ) -> Result<Option<Nanos>, CacheError> {
        let victim = {
            let s = self.state.lock();
            match self.pick_victim_locked(&s, threshold_only) {
                Some(z) => z,
                None => return Ok(None),
            }
        };
        let mut done = now;
        for slot in 0..self.slots_per_zone {
            let region = {
                let s = self.state.lock();
                if s.bitmap[victim as usize] & (1u64 << slot) == 0 {
                    continue;
                }
                s.slot_owner[victim as usize][slot as usize].expect("bitmap/owner skew")
            };
            let drop_it = match self.gc_mode {
                GcMode::Migrate => false,
                GcMode::Hinted { cold_cutoff } => temperature(RegionId(region)) < cold_cutoff,
            };
            if drop_it {
                let mut s = self.state.lock();
                Self::unmap_locked(&mut s, region);
                drop(s);
                dropped.push(RegionId(region));
                self.gc_dropped.incr();
            } else {
                // Migrate: read the whole region and replay it through the
                // normal placement path (counted as media, not host, bytes).
                let mut image = vec![0u8; self.region_size];
                let first = slot as u64 * self.region_blocks;
                let t_read = self
                    .dev
                    .read(ZoneId(victim), first, &mut image, now)
                    .map_err(|e| CacheError::Io(e.to_string()))?;
                let t = self.place(region, &image, t_read, false)?;
                done = done.max(t);
                self.gc_migrated.incr();
            }
        }
        {
            let mut s = self.state.lock();
            debug_assert_eq!(s.bitmap[victim as usize], 0, "victim not fully drained");
            s.next_slot[victim as usize] = 0;
            s.free.push_back(victim);
        }
        self.dev
            .reset(ZoneId(victim), done)
            .map_err(|e| CacheError::Io(e.to_string()))?;
        self.gc_cycles.incr();
        Ok(Some(done))
    }
}

impl RegionBackend for MiddleLayerBackend {
    fn region_size(&self) -> usize {
        self.region_size
    }

    fn num_regions(&self) -> u32 {
        self.user_regions
    }

    fn region_health(&self, region: RegionId) -> RegionHealth {
        // A region inherits the health of the zone its slot lives on:
        // read-only zones still serve their frozen slots (salvageable),
        // offline zones take every slot down with them. Unmapped regions
        // hold no data, so nothing needs salvaging.
        let zone = {
            let s = self.state.lock();
            match s.map.get(&region.0) {
                Some(&(zone, _)) => zone,
                None => return RegionHealth::Healthy,
            }
        };
        match self.dev.zone_state(ZoneId(zone)) {
            Ok(ZoneState::ReadOnly) => RegionHealth::Degraded,
            Ok(ZoneState::Offline) => RegionHealth::Dead,
            _ => RegionHealth::Healthy,
        }
    }

    fn readable_bytes(&self, region: RegionId) -> usize {
        // A region is readable only while its zone mapping exists; mapped
        // regions were written in full by `place`.
        let s = self.state.lock();
        if s.map.contains_key(&region.0) {
            self.region_size
        } else {
            0
        }
    }

    fn write_region(
        &self,
        region: RegionId,
        data: &[u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        check_region_write(region, data.len(), self.region_size, self.user_regions)?;
        self.place(region.0, data, now, true)
    }

    fn read(
        &self,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        check_region_read(region, offset, buf.len(), self.region_size, self.user_regions)?;
        let (zone, slot) = {
            let s = self.state.lock();
            *s.map.get(&region.0).ok_or_else(|| {
                CacheError::Io(format!("{region} has no zone mapping"))
            })?
        };
        // The paper's read path: look up the mapping, compute the physical
        // address from the in-zone slot base plus the in-region offset.
        let first_block = offset / BLOCK_SIZE;
        let last_block = (offset + buf.len() - 1) / BLOCK_SIZE;
        let mut cover = vec![0u8; (last_block - first_block + 1) * BLOCK_SIZE];
        let zone_block = slot as u64 * self.region_blocks + first_block as u64;
        let done = self
            .dev
            .read(ZoneId(zone), zone_block, &mut cover, now)
            .map_err(|e| CacheError::Io(e.to_string()))?;
        let start = offset - first_block * BLOCK_SIZE;
        buf.copy_from_slice(&cover[start..start + buf.len()]);
        Ok(done)
    }

    fn discard_region(&self, region: RegionId, now: Nanos) -> Result<Nanos, CacheError> {
        check_region_read(region, 0, 0, self.region_size, self.user_regions)?;
        let mut s = self.state.lock();
        Self::unmap_locked(&mut s, region.0);
        Ok(now)
    }

    fn maintenance(
        &self,
        now: Nanos,
        temperature: &dyn Fn(RegionId) -> f64,
    ) -> Result<MaintenanceOutcome, CacheError> {
        let mut outcome = MaintenanceOutcome {
            dropped_regions: Vec::new(),
            done: now,
        };
        // Background pass. In migrate mode, only collect well-decayed
        // zones (below the valid-ratio threshold) — waiting for decay is
        // what keeps migration WA low; the inline foreground pass in
        // `place` handles emergencies greedily. In hinted mode there is
        // no reason to wait: cold regions are dropped rather than
        // migrated, so any victim is cheap — this is precisely the §3.4
        // co-design benefit.
        let threshold_only = matches!(self.gc_mode, GcMode::Migrate);
        while self.empty_zones() < self.min_empty_zones {
            match self.gc_cycle(
                outcome.done,
                temperature,
                threshold_only,
                &mut outcome.dropped_regions,
            )? {
                Some(t) => outcome.done = outcome.done.max(t),
                None => break,
            }
        }
        Ok(outcome)
    }

    fn host_bytes_written(&self) -> u64 {
        self.host_bytes.get()
    }

    fn media_bytes_written(&self) -> u64 {
        self.dev.stats().media_bytes_written
    }

    fn label(&self) -> &'static str {
        "Region-Cache"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zns::ZnsConfig;

    fn dev() -> Arc<ZnsDevice> {
        Arc::new(ZnsDevice::new(ZnsConfig::small_test()))
    }

    fn backend() -> MiddleLayerBackend {
        MiddleLayerBackend::new(dev(), MiddleConfig::small_test())
    }

    fn image(fill: u8, size: usize) -> Vec<u8> {
        vec![fill; size]
    }

    const HOT: fn(RegionId) -> f64 = |_| 1.0;

    #[test]
    fn geometry_and_reserve() {
        let b = backend();
        assert_eq!(b.slots_per_zone(), 8);
        assert_eq!(b.num_regions(), 96);
        assert_eq!(b.region_size(), 4 * BLOCK_SIZE);
        assert_eq!(b.empty_zones(), 16);
    }

    #[test]
    fn write_read_round_trip() {
        let b = backend();
        let mut img = image(0, b.region_size());
        for (i, byte) in img.iter_mut().enumerate() {
            *byte = (i % 239) as u8;
        }
        let t = b.write_region(RegionId(5), &img, Nanos::ZERO).unwrap();
        let mut out = vec![0u8; 500];
        b.read(RegionId(5), 7777, &mut out, t).unwrap();
        assert_eq!(out[..], img[7777..8277]);
    }

    #[test]
    fn rewrite_invalidates_old_slot() {
        let b = backend();
        let img = image(1, b.region_size());
        let t = b.write_region(RegionId(0), &img, Nanos::ZERO).unwrap();
        let img2 = image(2, b.region_size());
        let t = b.write_region(RegionId(0), &img2, t).unwrap();
        let mut out = vec![0u8; 16];
        b.read(RegionId(0), 0, &mut out, t).unwrap();
        assert!(out.iter().all(|&x| x == 2));
        // Exactly one slot valid for this region.
        let s = b.state.lock();
        let total: u32 = s.bitmap.iter().map(|b| b.count_ones()).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn discard_clears_mapping() {
        let b = backend();
        let img = image(1, b.region_size());
        let t = b.write_region(RegionId(9), &img, Nanos::ZERO).unwrap();
        b.discard_region(RegionId(9), t).unwrap();
        let mut out = vec![0u8; 16];
        assert!(b.read(RegionId(9), 0, &mut out, t).is_err());
    }

    #[test]
    fn concurrent_open_zones_are_used() {
        let b = backend();
        let img = image(3, b.region_size());
        let mut t = Nanos::ZERO;
        for r in 0..4 {
            t = b.write_region(RegionId(r), &img, t).unwrap();
        }
        let s = b.state.lock();
        assert_eq!(s.open.len(), 2, "writes should spread over 2 open zones");
    }

    #[test]
    fn gc_reclaims_dead_zones_and_migrates_live_regions() {
        let b = backend();
        let mut t = Nanos::ZERO;
        let mut expect = std::collections::HashMap::new();
        // Fill every region, then rewrite a scrambled selection so zones
        // decay *partially* — GC victims then hold live regions to migrate.
        for r in 0..96u32 {
            t = b.write_region(RegionId(r), &image(r as u8, b.region_size()), t).unwrap();
            expect.insert(r, r as u8);
        }
        for i in 0..90u32 {
            let r = (i * 37) % 96;
            let fill = 100u8.wrapping_add(i as u8);
            t = b.write_region(RegionId(r), &image(fill, b.region_size()), t).unwrap();
            expect.insert(r, fill);
        }
        // Background maintenance only takes well-decayed victims; the
        // inline foreground pass during the writes above already collected
        // zones greedily when the free pool ran dry.
        let out = b.maintenance(t, &HOT).unwrap();
        assert!(out.dropped_regions.is_empty(), "migrate mode drops nothing");
        assert!(b.stats().gc_cycles > 0);
        // Every region still readable with its latest contents.
        for (&r, &fill) in &expect {
            let mut out = vec![0u8; 8];
            b.read(RegionId(r), 0, &mut out, t).unwrap();
            assert!(out.iter().all(|&x| x == fill), "region {r} corrupt");
        }
        // WA > 1 because of migrations, but bounded.
        assert!(b.write_amplification() > 1.0);
        assert!(b.stats().gc_migrated_regions > 0);
    }

    #[test]
    fn hinted_gc_drops_cold_regions_with_unit_wa() {
        let cfg = MiddleConfig {
            gc_mode: GcMode::Hinted { cold_cutoff: 0.5 },
            // One open zone => regions place sequentially: zone k holds
            // regions 8k..8k+8, making the decay pattern deterministic.
            concurrent_open_zones: 1,
            ..MiddleConfig::small_test()
        };
        let b = MiddleLayerBackend::new(dev(), cfg);
        let mut t = Nanos::ZERO;
        // Fill 96 regions (zones 0..12), then decay every zone to exactly
        // 2 valid slots — at the 20% threshold, so background GC victims
        // always hold live-but-cold regions to drop (never zero-valid).
        for r in 0..96u32 {
            t = b.write_region(RegionId(r), &image(1, b.region_size()), t).unwrap();
        }
        for r in 0..96u32 {
            if r % 8 >= 2 {
                t = b.discard_region(RegionId(r), t).unwrap();
            }
        }
        // Consume fresh zones (rewriting already-discarded regions) so the
        // empty pool drops below the floor (2) and maintenance must run.
        for i in 0..24u32 {
            let r = (i / 6) * 8 + 2 + (i % 6); // non-keeper region ids
            t = b.write_region(RegionId(r), &image(3, b.region_size()), t).unwrap();
        }
        assert!(b.empty_zones() < 2, "floor not breached: {}", b.empty_zones());
        let before_empty = b.empty_zones();
        let cold = |_: RegionId| 0.0;
        let out = b.maintenance(t, &cold).unwrap();
        assert!(!out.dropped_regions.is_empty(), "hinted GC dropped nothing");
        assert_eq!(b.stats().gc_migrated_regions, 0);
        assert_eq!(b.write_amplification(), 1.0);
        assert!(b.empty_zones() > before_empty);
        // Dropped regions are gone from the mapping.
        let mut buf = vec![0u8; 16];
        assert!(b.read(out.dropped_regions[0], 0, &mut buf, t).is_err());
    }

    #[test]
    fn reserve_validation_panics_when_too_tight() {
        let cfg = MiddleConfig {
            user_regions: 128, // 16 zones * 8 slots = 128 total; no reserve
            ..MiddleConfig::small_test()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            MiddleLayerBackend::new(dev(), cfg)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn append_mode_round_trips_and_gc_works() {
        let cfg = MiddleConfig {
            use_append: true,
            ..MiddleConfig::small_test()
        };
        let b = MiddleLayerBackend::new(dev(), cfg);
        let mut t = Nanos::ZERO;
        for r in 0..96u32 {
            t = b.write_region(RegionId(r), &image(r as u8, b.region_size()), t).unwrap();
        }
        for i in 0..40u32 {
            let r = (i * 37) % 96;
            t = b.write_region(RegionId(r), &image(200, b.region_size()), t).unwrap();
        }
        let mut out = vec![0u8; 8];
        b.read(RegionId(95), 0, &mut out, t).unwrap();
        assert!(out.iter().all(|&x| x == 95));
        assert_eq!(b.device().stats().write_amplification(), 1.0);
    }

    #[test]
    fn unmapped_read_fails() {
        let b = backend();
        let mut out = vec![0u8; 8];
        assert!(b.read(RegionId(0), 0, &mut out, Nanos::ZERO).is_err());
    }

    #[test]
    fn label() {
        assert_eq!(backend().label(), "Region-Cache");
    }
}
