//! Cache metrics: hit ratios, op counts, latency distributions.
//!
//! Every counter is a lock-free atomic ([`Counter`]) and the latency
//! histograms record wait-free, so the foreground paths never serialize on a
//! metrics lock. [`CacheMetrics::snapshot`] reads the counters in dependency
//! order (numerators before denominators) so derived ratios in a snapshot
//! taken under concurrent traffic stay within `[0, 1]`.

use serde::{Deserialize, Serialize};
use sim::{Counter, LatencyHistogram, Nanos};

/// Point-in-time cache metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheMetricsSnapshot {
    /// Lookup operations.
    pub gets: u64,
    /// Lookups that returned a value.
    pub hits: u64,
    /// Insert operations accepted.
    pub sets: u64,
    /// Inserts rejected by the admission policy.
    pub rejected: u64,
    /// Delete operations that removed an entry.
    pub deletes: u64,
    /// Objects dropped by region eviction.
    pub evicted_objects: u64,
    /// Regions evicted.
    pub evicted_regions: u64,
    /// Region buffers flushed to flash.
    pub flushes: u64,
    /// Bytes handed to the backend (cache-level host writes).
    pub bytes_flushed: u64,
    /// Objects dropped because the middle-layer GC discarded their region
    /// under hinted (co-design) mode.
    pub gc_dropped_objects: u64,
    /// Lookups that found an entry past its TTL (counted as misses).
    pub expired: u64,
    /// Objects rescued by the reinsertion policy during region eviction.
    pub reinserted_objects: u64,
    /// Reads whose object failed checksum verification (served as misses,
    /// entries invalidated).
    pub corrupt_reads: u64,
    /// Backend I/O operations retried after a transient failure.
    pub retries: u64,
    /// Backend I/O operations that kept failing through the whole retry
    /// budget (treated as permanent).
    pub retries_exhausted: u64,
    /// Region flushes abandoned after retry exhaustion (their buffered
    /// objects were dropped).
    pub flush_failures: u64,
    /// Region slots taken out of service after a permanent write/discard
    /// failure.
    pub quarantined_regions: u64,
    /// Capacity lost to quarantined region slots, in bytes.
    pub quarantined_bytes: u64,
    /// Objects rebuilt into the index by a device scan (snapshot-less
    /// recovery).
    pub scan_recovered_objects: u64,
    /// Unlocked reads that raced an eviction/seal and had to retry or miss
    /// (the entry's region generation changed while the I/O was in flight).
    pub stale_reads: u64,
    /// Regions evicted inline on the foreground write path because no clean
    /// region was available (maintenance backpressure).
    pub inline_evictions: u64,
    /// Regions evicted by the background/explicitly-driven [`Maintainer`].
    ///
    /// [`Maintainer`]: crate::maintainer::Maintainer
    pub maintainer_evictions: u64,
    /// Sets rerouted into a fresh region after their seal's flush failed
    /// permanently (the old region was quarantined and drained).
    pub write_reroutes: u64,
    /// Completed scrubber passes ([`LogCache::scrub`]).
    ///
    /// [`LogCache::scrub`]: crate::engine::LogCache::scrub
    pub scrub_passes: u64,
    /// Objects the scrubber found failing their checksum (invalidated so
    /// they surface as misses, never as bad bytes).
    pub scrub_corrupt_objects: u64,
    /// Live objects the scrubber migrated off degrading regions.
    pub scrub_salvaged_objects: u64,
    /// Key+value bytes the scrubber migrated off degrading regions.
    pub scrub_salvaged_bytes: u64,
    /// Regions retired because their zone degraded to read-only (live
    /// data was salvaged first).
    pub zones_readonly: u64,
    /// Regions retired because their zone went offline (contents lost;
    /// remaining objects became misses).
    pub zones_offline: u64,
    /// Entries evicted from the DRAM tier and written into the flash log
    /// (write-back mode's DRAM→flash demotion pipeline; 0 in mirror mode).
    pub dram_demotions: u64,
    /// Demotions un-published because a concurrent set or delete bumped
    /// the shard's supersession epoch while the flash publish was in
    /// flight (the demote/invalidate crossing, DESIGN.md §10).
    pub dram_demote_undos: u64,
}

impl CacheMetricsSnapshot {
    /// Hit ratio over all lookups (1.0 when no lookups yet).
    pub fn hit_ratio(&self) -> f64 {
        if self.gets == 0 {
            1.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }
}

/// A fixed-size table of per-id counters — one per region slot or zone,
/// sized at construction so hot-path increments are a bounds-checked
/// atomic add with no locking and no allocation. Out-of-range ids are
/// silently dropped (a statistics table must never panic a data path).
///
/// [`LogCache`] keeps one table per tracked dimension (seals and
/// evictions per region); trace snapshots cross-check against them.
///
/// [`LogCache`]: crate::engine::LogCache
#[derive(Debug, Default)]
pub struct CounterTable {
    counters: Vec<Counter>,
}

impl CounterTable {
    /// A table of `n` zeroed counters.
    pub fn new(n: usize) -> Self {
        CounterTable {
            counters: (0..n).map(|_| Counter::new()).collect(),
        }
    }

    /// Adds 1 to counter `id` (no-op when out of range).
    pub fn incr(&self, id: usize) {
        self.add(id, 1);
    }

    /// Adds `delta` to counter `id` (no-op when out of range).
    pub fn add(&self, id: usize, delta: u64) {
        if let Some(c) = self.counters.get(id) {
            c.add(delta);
        }
    }

    /// Current value of counter `id` (0 when out of range).
    pub fn get(&self, id: usize) -> u64 {
        self.counters.get(id).map_or(0, Counter::get)
    }

    /// Number of counters in the table.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table holds no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// All counter values, indexed by id.
    pub fn snapshot(&self) -> Vec<u64> {
        self.counters.iter().map(Counter::get).collect()
    }

    /// Sum across all counters.
    pub fn total(&self) -> u64 {
        self.counters.iter().map(Counter::get).sum()
    }
}

/// Internal live metrics: counters plus op-latency histograms.
#[derive(Debug, Default)]
pub(crate) struct CacheMetrics {
    pub gets: Counter,
    pub hits: Counter,
    pub sets: Counter,
    pub rejected: Counter,
    pub deletes: Counter,
    pub evicted_objects: Counter,
    pub evicted_regions: Counter,
    pub flushes: Counter,
    pub bytes_flushed: Counter,
    pub gc_dropped_objects: Counter,
    pub expired: Counter,
    pub reinserted_objects: Counter,
    pub corrupt_reads: Counter,
    pub retries: Counter,
    pub retries_exhausted: Counter,
    pub flush_failures: Counter,
    pub quarantined_regions: Counter,
    pub quarantined_bytes: Counter,
    pub scan_recovered_objects: Counter,
    pub stale_reads: Counter,
    pub inline_evictions: Counter,
    pub maintainer_evictions: Counter,
    pub write_reroutes: Counter,
    pub scrub_passes: Counter,
    pub scrub_corrupt_objects: Counter,
    pub scrub_salvaged_objects: Counter,
    pub scrub_salvaged_bytes: Counter,
    pub zones_readonly: Counter,
    pub zones_offline: Counter,
    pub dram_demotions: Counter,
    pub dram_demote_undos: Counter,
    pub get_latency: LatencyHistogram,
    pub set_latency: LatencyHistogram,
}

impl CacheMetrics {
    /// Reads all counters into a consistent-enough snapshot.
    ///
    /// Counters are atomics, so a snapshot under live traffic is not a
    /// single instant — but numerators are read *before* their denominators
    /// (`hits` before `gets`, `evicted_objects` before `evicted_regions`),
    /// so monotone-increasing counters can never make a ratio exceed its
    /// logical bound.
    pub(crate) fn snapshot(&self) -> CacheMetricsSnapshot {
        // Numerators first.
        let hits = self.hits.get();
        let evicted_objects = self.evicted_objects.get();
        let expired = self.expired.get();
        let corrupt_reads = self.corrupt_reads.get();
        let stale_reads = self.stale_reads.get();
        CacheMetricsSnapshot {
            hits,
            evicted_objects,
            expired,
            corrupt_reads,
            stale_reads,
            gets: self.gets.get(),
            sets: self.sets.get(),
            rejected: self.rejected.get(),
            deletes: self.deletes.get(),
            evicted_regions: self.evicted_regions.get(),
            flushes: self.flushes.get(),
            bytes_flushed: self.bytes_flushed.get(),
            gc_dropped_objects: self.gc_dropped_objects.get(),
            reinserted_objects: self.reinserted_objects.get(),
            retries: self.retries.get(),
            retries_exhausted: self.retries_exhausted.get(),
            flush_failures: self.flush_failures.get(),
            quarantined_regions: self.quarantined_regions.get(),
            quarantined_bytes: self.quarantined_bytes.get(),
            scan_recovered_objects: self.scan_recovered_objects.get(),
            inline_evictions: self.inline_evictions.get(),
            maintainer_evictions: self.maintainer_evictions.get(),
            write_reroutes: self.write_reroutes.get(),
            scrub_passes: self.scrub_passes.get(),
            scrub_corrupt_objects: self.scrub_corrupt_objects.get(),
            scrub_salvaged_objects: self.scrub_salvaged_objects.get(),
            scrub_salvaged_bytes: self.scrub_salvaged_bytes.get(),
            zones_readonly: self.zones_readonly.get(),
            zones_offline: self.zones_offline.get(),
            dram_demotions: self.dram_demotions.get(),
            dram_demote_undos: self.dram_demote_undos.get(),
        }
    }

    pub(crate) fn record_get(&self, latency: Nanos) {
        self.get_latency.record(latency);
    }

    pub(crate) fn record_set(&self, latency: Nanos) {
        self.set_latency.record(latency);
    }

    /// Clones the get-latency histogram for reporting.
    pub(crate) fn get_latency_snapshot(&self) -> LatencyHistogram {
        self.get_latency.clone()
    }

    /// Clones the set-latency histogram for reporting.
    pub(crate) fn set_latency_snapshot(&self) -> LatencyHistogram {
        self.set_latency.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_table_bounds_and_totals() {
        let t = CounterTable::new(4);
        assert_eq!((t.len(), t.is_empty()), (4, false));
        t.incr(0);
        t.add(3, 5);
        t.incr(99); // out of range: dropped, not a panic
        assert_eq!(t.get(0), 1);
        assert_eq!(t.get(3), 5);
        assert_eq!(t.get(99), 0);
        assert_eq!(t.snapshot(), vec![1, 0, 0, 5]);
        assert_eq!(t.total(), 6);
    }

    #[test]
    fn hit_ratio_math() {
        let mut s = CacheMetricsSnapshot::default();
        assert_eq!(s.hit_ratio(), 1.0);
        s.gets = 10;
        s.hits = 7;
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn live_metrics_snapshot() {
        let m = CacheMetrics::default();
        m.gets.add(3);
        m.hits.add(2);
        m.record_get(Nanos::from_micros(10));
        let s = m.snapshot();
        assert_eq!((s.gets, s.hits), (3, 2));
        assert_eq!(m.get_latency_snapshot().count(), 1);
        assert_eq!(m.set_latency_snapshot().count(), 0);
    }

    #[test]
    fn snapshot_under_concurrent_updates_keeps_hits_bounded() {
        use std::sync::Arc;
        let m = Arc::new(CacheMetrics::default());
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let w = Arc::clone(&m);
            let st = Arc::clone(&stop);
            s.spawn(move || {
                // relaxed-ok: test stop flag; no payload rides on it.
                while !st.load(std::sync::atomic::Ordering::Relaxed) {
                    // A hit is always recorded after its get.
                    w.gets.add(1);
                    w.hits.add(1);
                }
            });
            for _ in 0..1_000 {
                let snap = m.snapshot();
                assert!(snap.hits <= snap.gets, "hits {} > gets {}", snap.hits, snap.gets);
            }
            // relaxed-ok: test stop flag; no payload rides on it.
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
}
