//! The log-structured cache engine.
//!
//! Objects are appended into an in-memory *region buffer*; a full buffer is
//! flushed as one large sequential write to a region slot on the backend.
//! When no slot is free, a whole region is evicted (CacheLib's design: the
//! paper's §2.1 "evicts entire regions rather than individual cache
//! objects"). Lookups resolve entirely in the DRAM index and touch flash
//! only for the object bytes.
//!
//! Two timing mechanisms matter for reproducing the paper:
//!
//! * **Bounded flush pipeline** — up to `in_memory_buffers` region flushes
//!   may be in flight; sealing a buffer while all slots are busy stalls the
//!   inserter until the oldest flush completes. With zone-sized regions
//!   this is the long "filling time" of Fig. 3.
//! * **Serialized eviction cleanup** — evicting a region removes each of
//!   its index entries under shard locks at a per-entry CPU cost
//!   (`index_remove_cpu`); evicting a 1 GiB region with tens of thousands
//!   of objects visibly stalls insertion, the Fig. 3 jump at the onset of
//!   eviction.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use sim::{crc32, Crc32, LatencyHistogram, Nanos};

use crate::backend::RegionBackend;
use crate::dram::DramCache;
use crate::index::{Index, IndexEntry};
use crate::metrics::{CacheMetrics, CacheMetricsSnapshot};
use crate::policy::{Admission, AdmissionGate, EvictionPolicy};
use crate::types::{fingerprint, hash_key, CacheError, RegionId};

/// On-flash object header: `u16 key_len`, `u16 flags` (reserved),
/// `u32 value_len`, `u32 crc` (CRC32 over key + value).
pub const OBJECT_HEADER: usize = 12;

/// Byte offset of the CRC field within [`OBJECT_HEADER`].
pub(crate) const HEADER_CRC_OFFSET: usize = 8;

/// Bounded retry for transient backend I/O failures, with exponential
/// backoff in *simulated* time (the delay is charged to the operation's
/// completion timestamp; nothing sleeps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per I/O (1 = no retry).
    pub attempts: u32,
    /// Delay before the first retry; doubles on each subsequent one.
    pub backoff: Nanos,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Nanos::from_micros(10),
        }
    }
}

impl RetryPolicy {
    /// No retries: every backend error is treated as permanent.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: Nanos::ZERO,
        }
    }
}

/// Configuration for a [`LogCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Region-level eviction policy (paper: LRU).
    pub eviction: EvictionPolicy,
    /// Flash admission policy.
    pub admission: Admission,
    /// DRAM tier capacity in bytes (0 disables the tier).
    pub dram_bytes: usize,
    /// Region buffers that may be in flight at once (CacheLib default: a
    /// small clean-region pool; 2 here).
    pub in_memory_buffers: usize,
    /// CPU cost to serialize and index one inserted object.
    pub insert_cpu: Nanos,
    /// CPU cost of one index lookup.
    pub lookup_cpu: Nanos,
    /// CPU cost to remove one index entry during region eviction, paid by
    /// the evicting thread.
    pub index_remove_cpu: Nanos,
    /// Per-entry cost of an *oversized* eviction (more entries than
    /// `eviction_lock_threshold`): the cleanup then saturates every index
    /// shard and stalls the whole engine — the Fig. 3 contention. This is
    /// a scale-compensation parameter: scaled-down regions hold fewer
    /// objects than the paper's, so the per-object charge is raised to
    /// keep the eviction-stall-to-fill-time ratio at the paper's level.
    pub index_remove_contended_cpu: Nanos,
    /// Verify full keys against flash on lookup (requires a payload-backed
    /// store; disable for sparse-store experiments).
    pub verify_keys: bool,
    /// Eviction cleanups larger than this many entries saturate every
    /// index shard and stall the whole engine; smaller cleanups cost only
    /// the evicting thread (sharded locks absorb them).
    pub eviction_lock_threshold: usize,
    /// Fraction of an evicted region's objects that may be *reinserted*
    /// instead of dropped, chosen among objects read since insertion —
    /// CacheLib's hits-based reinsertion policy. 0.0 disables it.
    pub reinsertion_fraction: f64,
    /// Run backend maintenance (middle-layer GC) every N sets.
    pub maintenance_interval_sets: u32,
    /// Retry budget for transient backend I/O failures.
    pub retry: RetryPolicy,
    /// RNG seed for the admission gate.
    pub seed: u64,
}

impl CacheConfig {
    /// Defaults mirroring the paper's setup (LRU, admit-all, no DRAM tier).
    pub fn small_test() -> Self {
        CacheConfig {
            eviction: EvictionPolicy::Lru,
            admission: Admission::Always,
            dram_bytes: 0,
            in_memory_buffers: 2,
            insert_cpu: Nanos::from_nanos(2_000),
            lookup_cpu: Nanos::from_nanos(1_000),
            index_remove_cpu: Nanos::from_nanos(300),
            index_remove_contended_cpu: Nanos::from_nanos(300),
            verify_keys: true,
            eviction_lock_threshold: 4096,
            reinsertion_fraction: 0.0,
            maintenance_interval_sets: 16,
            retry: RetryPolicy::default(),
            seed: 42,
        }
    }
}

/// One region's dumped index state, as recovery snapshots carry it:
/// `(region, entries as (hash, byte offset), live objects, last-access
/// sequence, sealed?)`.
pub(crate) type RegionDumpEntry = (u32, Vec<(u64, u32)>, u32, u64, bool);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RegionState {
    /// Unused slot.
    Free,
    /// The active in-memory buffer is bound to this slot.
    Active,
    /// Flushed to the backend and readable.
    Sealed,
    /// Taken out of service after a permanent write/discard failure; never
    /// allocated again for the lifetime of this engine.
    Quarantined,
}

#[derive(Debug)]
struct RegionMeta {
    state: RegionState,
    /// (key hash, object offset) of every object written to this region.
    entries: Vec<(u64, u32)>,
    /// Objects not yet superseded or deleted.
    live_objects: u32,
    /// Global access sequence at last touch (LRU key).
    last_access: u64,
}

struct ActiveBuffer {
    region: RegionId,
    data: Vec<u8>,
    used: usize,
    entries: Vec<(u64, u32)>,
}

struct EngineState {
    regions: Vec<RegionMeta>,
    free: VecDeque<u32>,
    /// Seal order for FIFO eviction.
    fifo: VecDeque<u32>,
    active: Option<ActiveBuffer>,
    /// Completion times of in-flight region flushes.
    in_flight: VecDeque<Nanos>,
    access_seq: u64,
    sets_since_maintenance: u32,
    /// Index-wide stall from region-eviction cleanup: every operation
    /// entering the engine waits for it. This is the shared-index lock
    /// contention the paper holds responsible for the Fig. 3 insertion
    /// jump ("caused by eviction operations in other threads, which
    /// involve lock controls for the shared index").
    stall_until: Nanos,
    /// Objects rescued from the last evicted region, waiting to be
    /// appended into the next buffer (reinsertion policy).
    pending_reinserts: Vec<(Vec<u8>, Vec<u8>, Nanos)>,
    dram: DramCache,
    admission: AdmissionGate,
}

/// A hybrid (DRAM + flash) log-structured cache over a [`RegionBackend`].
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct LogCache {
    backend: Arc<dyn RegionBackend>,
    config: CacheConfig,
    index: Index,
    state: Mutex<EngineState>,
    metrics: CacheMetrics,
}

impl core::fmt::Debug for LogCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LogCache")
            .field("scheme", &self.backend.label())
            .field("regions", &self.backend.num_regions())
            .field("metrics", &self.metrics.snapshot())
            .finish()
    }
}

impl LogCache {
    /// Builds a cache over `backend`.
    ///
    /// # Errors
    ///
    /// [`CacheError::BackendTooSmall`] when fewer than 3 region slots are
    /// available (one active + one sealed + one to evict).
    pub fn new(backend: Arc<dyn RegionBackend>, config: CacheConfig) -> Result<Self, CacheError> {
        if backend.num_regions() < 3 {
            return Err(CacheError::BackendTooSmall);
        }
        let n = backend.num_regions();
        let regions = (0..n)
            .map(|_| RegionMeta {
                state: RegionState::Free,
                entries: Vec::new(),
                live_objects: 0,
                last_access: 0,
            })
            .collect();
        Ok(LogCache {
            index: Index::new(),
            state: Mutex::new(EngineState {
                regions,
                free: (0..n).collect(),
                fifo: VecDeque::new(),
                active: None,
                in_flight: VecDeque::new(),
                access_seq: 0,
                sets_since_maintenance: 0,
                stall_until: Nanos::ZERO,
                pending_reinserts: Vec::new(),
                dram: DramCache::new(config.dram_bytes),
                admission: AdmissionGate::new(config.admission, config.seed),
            }),
            metrics: CacheMetrics::default(),
            backend,
            config,
        })
    }

    /// The backend (for scheme-level statistics).
    pub fn backend(&self) -> &Arc<dyn RegionBackend> {
        &self.backend
    }

    /// Cache metrics snapshot.
    pub fn metrics(&self) -> CacheMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Lookup-latency histogram (copied).
    pub fn get_latency(&self) -> LatencyHistogram {
        self.metrics.get_latency_snapshot()
    }

    /// Insert-latency histogram (copied).
    pub fn set_latency(&self) -> LatencyHistogram {
        self.metrics.set_latency_snapshot()
    }

    /// End-to-end write amplification (media bytes / cache flush bytes).
    pub fn write_amplification(&self) -> f64 {
        self.backend.write_amplification()
    }

    /// Live object count in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache holds no objects.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn object_size(key: &[u8], value: &[u8]) -> usize {
        OBJECT_HEADER + key.len() + value.len()
    }

    /// Runs a backend I/O under the configured retry budget. Transient
    /// device errors ([`CacheError::Io`]) are retried with exponential
    /// simulated-time backoff; anything else — and exhaustion of the
    /// budget — propagates.
    fn retry_io(
        &self,
        mut t: Nanos,
        mut op: impl FnMut(Nanos) -> Result<Nanos, CacheError>,
    ) -> Result<Nanos, CacheError> {
        let attempts = self.config.retry.attempts.max(1);
        let mut delay = self.config.retry.backoff;
        for attempt in 1..=attempts {
            match op(t) {
                Ok(done) => return Ok(done),
                Err(CacheError::Io(msg)) => {
                    if attempt == attempts {
                        self.metrics.retries_exhausted.incr();
                        return Err(CacheError::Io(msg));
                    }
                    self.metrics.retries.incr();
                    t += delay;
                    delay = delay * 2;
                }
                Err(other) => return Err(other),
            }
        }
        unreachable!("loop returns on the last attempt")
    }

    /// Takes a region slot permanently out of service. The slot is never
    /// returned to the free list; capacity shrinks by one region.
    fn quarantine(&self, s: &mut EngineState, region: u32) {
        let meta = &mut s.regions[region as usize];
        meta.state = RegionState::Quarantined;
        meta.entries.clear();
        meta.live_objects = 0;
        s.fifo.retain(|&r| r != region);
        self.metrics.quarantined_regions.incr();
        self.metrics
            .quarantined_bytes
            .add(self.backend.region_size() as u64);
    }

    /// CRC32 over an object's key + value, as stored in its header.
    fn object_crc(key: &[u8], value: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(key);
        c.update(value);
        c.finalize()
    }

    /// Picks an eviction victim among sealed regions.
    fn pick_victim(&self, s: &mut EngineState) -> Option<u32> {
        match self.config.eviction {
            EvictionPolicy::Fifo => {
                while let Some(r) = s.fifo.pop_front() {
                    if s.regions[r as usize].state == RegionState::Sealed {
                        return Some(r);
                    }
                }
                None
            }
            EvictionPolicy::Lru => s
                .regions
                .iter()
                .enumerate()
                .filter(|(_, m)| m.state == RegionState::Sealed)
                .min_by_key(|(_, m)| m.last_access)
                .map(|(i, _)| i as u32),
        }
    }

    /// Acquires a free region slot, evicting if necessary. Returns the slot
    /// and the time after any serialized eviction work.
    ///
    /// A victim whose discard keeps failing through the retry budget is
    /// quarantined and the next victim is tried — one bad region must not
    /// wedge the whole cache.
    fn acquire_region(&self, s: &mut EngineState, now: Nanos) -> Result<(u32, Nanos), CacheError> {
        if let Some(r) = s.free.pop_front() {
            debug_assert_eq!(s.regions[r as usize].state, RegionState::Free);
            return Ok((r, now));
        }
        let mut now = now;
        loop {
            let victim = self.pick_victim(s).ok_or_else(|| {
                CacheError::Io("no region available: nothing sealed to evict".into())
            })?;
            let meta = &mut s.regions[victim as usize];
            let entries = std::mem::take(&mut meta.entries);
            meta.live_objects = 0;
            meta.state = RegionState::Free;
            // Reinsertion policy: rescue a bounded share of still-referenced
            // objects by reading them back before the region is discarded.
            // Rescue is best-effort: unreadable or corrupt objects are
            // simply not rescued.
            if self.config.reinsertion_fraction > 0.0 {
                let budget = ((entries.len() as f64) * self.config.reinsertion_fraction) as usize;
                let mut rescued = 0usize;
                for &(hash, offset) in &entries {
                    if rescued >= budget {
                        break;
                    }
                    let Some(e) = self.index.get_at(hash, RegionId(victim), offset) else {
                        continue;
                    };
                    if !e.accessed || e.expiry <= now {
                        continue;
                    }
                    let len = OBJECT_HEADER + e.key_len as usize + e.value_len as usize;
                    let mut obj = vec![0u8; len];
                    match self.retry_io(now, |t| {
                        self.backend.read(RegionId(victim), offset as usize, &mut obj, t)
                    }) {
                        Ok(t) => now = t,
                        Err(_) => continue,
                    }
                    let key = &obj[OBJECT_HEADER..OBJECT_HEADER + e.key_len as usize];
                    let value = &obj[OBJECT_HEADER + e.key_len as usize..];
                    let stored_crc = u32::from_le_bytes(
                        obj[HEADER_CRC_OFFSET..OBJECT_HEADER].try_into().expect("4 bytes"),
                    );
                    if stored_crc != Self::object_crc(key, value) {
                        self.metrics.corrupt_reads.incr();
                        continue;
                    }
                    s.pending_reinserts.push((key.to_vec(), value.to_vec(), e.expiry));
                    rescued += 1;
                }
                self.metrics.reinserted_objects.add(rescued as u64);
            }
            // Serialized index cleanup: the eviction cost that grows with
            // region size (Fig. 3's jump).
            let mut removed = 0u64;
            for &(hash, offset) in &entries {
                if self.index.remove_if_at(hash, RegionId(victim), offset) {
                    removed += 1;
                }
            }
            let mut t = now + self.config.index_remove_cpu * entries.len() as u64;
            // Small cleanups hide behind sharded index locks; a huge one (a
            // zone-sized region) touches every shard continuously and stalls
            // the whole engine — the paper's Fig. 3 contention.
            if entries.len() > self.config.eviction_lock_threshold {
                let stall = now + self.config.index_remove_contended_cpu * entries.len() as u64;
                s.stall_until = s.stall_until.max(stall);
                t = t.max(stall);
            }
            self.metrics.evicted_objects.add(removed);
            self.metrics.evicted_regions.incr();
            match self.retry_io(t, |t| self.backend.discard_region(RegionId(victim), t)) {
                Ok(t) => return Ok((victim, t)),
                Err(_) => {
                    // Permanent discard failure: the slot's storage cannot
                    // be reclaimed safely. Quarantine it and evict another.
                    self.quarantine(s, victim);
                    now = t;
                }
            }
        }
    }

    /// Seals and flushes the active buffer. Returns the time after the
    /// writer may proceed (stalls when the flush pipeline is full).
    fn seal_active(&self, s: &mut EngineState, now: Nanos) -> Result<Nanos, CacheError> {
        let mut buffer = match s.active.take() {
            Some(b) => b,
            None => return Ok(now),
        };
        let mut t = now;
        // Flush pipeline: wait for the oldest in-flight flush if all
        // buffers are busy.
        while s.in_flight.len() >= self.config.in_memory_buffers.max(1) {
            match s.in_flight.pop_front() {
                Some(oldest) => t = t.max(oldest),
                None => break,
            }
        }
        // Pad the tail and write the full region image.
        buffer.data.resize(self.backend.region_size(), 0);
        let write = self.retry_io(t, |t| {
            self.backend.write_region(buffer.region, &buffer.data, t)
        });
        let done = match write {
            Ok(done) => done,
            Err(e) => {
                // Permanent flush failure: this is a cache, so the buffered
                // objects may be dropped — but the index must not point at
                // unwritten storage, and the slot (whose media just proved
                // unwritable) is quarantined rather than recycled.
                for &(hash, offset) in &buffer.entries {
                    self.index.remove_if_at(hash, buffer.region, offset);
                }
                self.quarantine(s, buffer.region.0);
                self.metrics.flush_failures.incr();
                return Err(e);
            }
        };
        s.in_flight.push_back(done);
        let meta = &mut s.regions[buffer.region.0 as usize];
        debug_assert_eq!(meta.state, RegionState::Active);
        meta.state = RegionState::Sealed;
        meta.live_objects = buffer.entries.len() as u32;
        meta.entries = std::mem::take(&mut buffer.entries);
        meta.last_access = s.access_seq;
        s.fifo.push_back(buffer.region.0);
        self.metrics.flushes.incr();
        self.metrics
            .bytes_flushed
            .add(self.backend.region_size() as u64);
        Ok(t)
    }

    /// Ensures an active buffer with at least `need` free bytes.
    fn ensure_buffer(
        &self,
        s: &mut EngineState,
        need: usize,
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        let region_size = self.backend.region_size();
        if let Some(buf) = &s.active {
            if region_size - buf.used >= need {
                return Ok(now);
            }
        }
        let t = self.seal_active(s, now)?;
        let (slot, t) = self.acquire_region(s, t)?;
        s.regions[slot as usize].state = RegionState::Active;
        s.regions[slot as usize].last_access = s.access_seq;
        s.active = Some(ActiveBuffer {
            region: RegionId(slot),
            data: Vec::with_capacity(region_size),
            used: 0,
            entries: Vec::new(),
        });
        // Drain rescued objects into the fresh buffer (dropping any that
        // no longer fit — reinsertion is best-effort).
        let pending = std::mem::take(&mut s.pending_reinserts);
        for (key, value, expiry) in pending {
            let size = Self::object_size(&key, &value);
            let fits = match &s.active {
                Some(buf) => region_size - buf.used >= size,
                None => false,
            };
            if !fits {
                continue;
            }
            self.append_object(s, &key, &value, expiry)?;
        }
        Ok(t)
    }

    /// Appends one object into the active buffer and indexes it. The
    /// caller has verified it fits.
    ///
    /// # Errors
    ///
    /// [`CacheError::Internal`] if no active buffer is bound (an engine
    /// bug, surfaced instead of panicking).
    fn append_object(
        &self,
        s: &mut EngineState,
        key: &[u8],
        value: &[u8],
        expiry: Nanos,
    ) -> Result<(), CacheError> {
        let hash = hash_key(key);
        let fp = fingerprint(key);
        let size = Self::object_size(key, value);
        let crc = Self::object_crc(key, value);
        let buf = s
            .active
            .as_mut()
            .ok_or_else(|| CacheError::Internal("append without an active buffer".into()))?;
        let offset = buf.used as u32;
        buf.data.extend_from_slice(&(key.len() as u16).to_le_bytes());
        buf.data.extend_from_slice(&0u16.to_le_bytes());
        buf.data.extend_from_slice(&(value.len() as u32).to_le_bytes());
        buf.data.extend_from_slice(&crc.to_le_bytes());
        buf.data.extend_from_slice(key);
        buf.data.extend_from_slice(value);
        buf.used += size;
        buf.entries.push((hash, offset));
        let region = buf.region;
        let old = self.index.insert(
            hash,
            IndexEntry {
                region,
                offset,
                key_len: key.len() as u16,
                value_len: value.len() as u32,
                fingerprint: fp,
                expiry,
                accessed: false,
            },
        );
        if let Some(old) = old {
            let meta = &mut s.regions[old.region.0 as usize];
            meta.live_objects = meta.live_objects.saturating_sub(1);
        }
        Ok(())
    }

    /// Runs backend maintenance with LRU-derived temperatures and recycles
    /// any regions the backend dropped (hinted GC).
    fn run_maintenance(&self, s: &mut EngineState, now: Nanos) -> Result<(), CacheError> {
        // Rank-based recency: the coldest region scores 0, the hottest 1.
        // (A raw last_access/now ratio saturates near 1 for everything
        // that was touched at all; ranks keep the hint discriminative.)
        let mut order: Vec<u32> = (0..s.regions.len() as u32).collect();
        order.sort_by_key(|&r| s.regions[r as usize].last_access);
        let n = order.len().max(1) as f64;
        let mut scores = vec![0.0f64; order.len()];
        for (rank, &r) in order.iter().enumerate() {
            scores[r as usize] = rank as f64 / n;
        }
        let temperature = move |r: RegionId| scores.get(r.0 as usize).copied().unwrap_or(0.0);
        let outcome = self.backend.maintenance(now, &temperature)?;
        for region in outcome.dropped_regions {
            let meta = &mut s.regions[region.0 as usize];
            if meta.state != RegionState::Sealed {
                continue; // raced with eviction; nothing to recycle
            }
            let entries = std::mem::take(&mut meta.entries);
            let mut removed = 0u64;
            for &(hash, offset) in &entries {
                if self.index.remove_if_at(hash, region, offset) {
                    removed += 1;
                }
            }
            meta.live_objects = 0;
            meta.state = RegionState::Free;
            s.free.push_back(region.0);
            s.fifo.retain(|&r| r != region.0);
            self.metrics.gc_dropped_objects.add(removed);
        }
        Ok(())
    }

    /// Inserts a key/value pair with no expiry.
    ///
    /// Returns the operation's completion time.
    ///
    /// # Errors
    ///
    /// [`CacheError::ObjectTooLarge`] when the object cannot fit one
    /// region; [`CacheError::KeyTooLarge`] beyond 64 KiB keys; backend I/O
    /// errors otherwise.
    pub fn set(&self, key: &[u8], value: &[u8], now: Nanos) -> Result<Nanos, CacheError> {
        self.set_with_ttl(key, value, None, now)
    }

    /// Inserts a key/value pair that expires `ttl` after `now` (CacheLib
    /// items carry TTLs; expired entries are treated as misses and
    /// reclaimed lazily on lookup).
    ///
    /// # Errors
    ///
    /// As [`LogCache::set`].
    pub fn set_with_ttl(
        &self,
        key: &[u8],
        value: &[u8],
        ttl: Option<Nanos>,
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        if key.len() > u16::MAX as usize {
            return Err(CacheError::KeyTooLarge { len: key.len() });
        }
        let size = Self::object_size(key, value);
        let region_size = self.backend.region_size();
        if size > region_size {
            return Err(CacheError::ObjectTooLarge {
                size,
                region_size,
            });
        }
        let mut s = self.state.lock();
        if !s.admission.admit() {
            self.metrics.rejected.incr();
            return Ok(now + self.config.insert_cpu);
        }
        let mut t = now.max(s.stall_until) + self.config.insert_cpu;
        t = self.ensure_buffer(&mut s, size, t)?;
        s.access_seq += 1;
        let seq = s.access_seq;

        let hash = hash_key(key);
        let expiry = ttl.map_or(Nanos::MAX, |ttl| now + ttl);
        self.append_object(&mut s, key, value, expiry)?;
        let region = s
            .active
            .as_ref()
            .ok_or_else(|| CacheError::Internal("active buffer vanished after append".into()))?
            .region;
        s.regions[region.0 as usize].last_access = seq;
        // DRAM tier mirrors the newest version.
        if self.config.dram_bytes > 0 {
            s.dram.insert(hash, Bytes::copy_from_slice(value));
        }

        s.sets_since_maintenance += 1;
        if s.sets_since_maintenance >= self.config.maintenance_interval_sets {
            s.sets_since_maintenance = 0;
            self.run_maintenance(&mut s, t)?;
        }
        drop(s);
        self.metrics.sets.incr();
        self.metrics.record_set(t - now);
        Ok(t)
    }

    /// Looks up a key.
    ///
    /// Returns the value (if cached) and the completion time.
    ///
    /// # Errors
    ///
    /// Backend I/O failures (never "miss" — a miss is `Ok(None)`).
    pub fn get(&self, key: &[u8], now: Nanos) -> Result<(Option<Bytes>, Nanos), CacheError> {
        let hash = hash_key(key);
        let fp = fingerprint(key);
        let mut t = now + self.config.lookup_cpu;
        self.metrics.gets.incr();

        let entry = match self.index.lookup(hash, fp) {
            Some(e) => e,
            None => {
                self.metrics.record_get(t - now);
                return Ok((None, t));
            }
        };
        if entry.expiry <= now {
            // Lazy TTL reclamation: drop the entry, report a miss.
            if self.index.remove(hash, fp).is_some() {
                let mut s = self.state.lock();
                let meta = &mut s.regions[entry.region.0 as usize];
                meta.live_objects = meta.live_objects.saturating_sub(1);
                s.dram.remove(hash);
            }
            self.metrics.expired.incr();
            self.metrics.record_get(t - now);
            return Ok((None, t));
        }

        let mut s = self.state.lock();
        t = t.max(s.stall_until + self.config.lookup_cpu);
        s.access_seq += 1;
        let seq = s.access_seq;
        // DRAM tier first.
        if self.config.dram_bytes > 0 {
            if let Some(v) = s.dram.get(hash) {
                s.regions[entry.region.0 as usize].last_access = seq;
                drop(s);
                // A DRAM hit is still a reference to the flash copy.
                self.index.touch(hash, fp);
                self.metrics.hits.incr();
                self.metrics.record_get(t - now);
                return Ok((Some(v), t));
            }
        }
        // Serve from the active buffer without touching flash.
        let from_buffer = match &s.active {
            Some(buf) if buf.region == entry.region => {
                let start = entry.offset as usize + OBJECT_HEADER + entry.key_len as usize;
                let end = start + entry.value_len as usize;
                Some(Bytes::copy_from_slice(&buf.data[start..end]))
            }
            _ => None,
        };
        s.regions[entry.region.0 as usize].last_access = seq;
        drop(s);

        let value = match from_buffer {
            Some(v) => v,
            None => {
                if self.config.verify_keys {
                    // Read header + key + value; verify identity + checksum.
                    let len = OBJECT_HEADER + entry.key_len as usize + entry.value_len as usize;
                    let mut obj = vec![0u8; len];
                    t = self.retry_io(t, |t| {
                        self.backend.read(entry.region, entry.offset as usize, &mut obj, t)
                    })?;
                    let stored_key =
                        &obj[OBJECT_HEADER..OBJECT_HEADER + entry.key_len as usize];
                    let stored_crc = u32::from_le_bytes([
                        obj[HEADER_CRC_OFFSET],
                        obj[HEADER_CRC_OFFSET + 1],
                        obj[HEADER_CRC_OFFSET + 2],
                        obj[HEADER_CRC_OFFSET + 3],
                    ]);
                    if stored_crc != crc32(&obj[OBJECT_HEADER..]) {
                        // Bit rot or a torn flush: the entry is poison.
                        // Invalidate it and serve a miss — never bad bytes.
                        if self.index.remove(hash, fp).is_some() {
                            let mut s = self.state.lock();
                            let meta = &mut s.regions[entry.region.0 as usize];
                            meta.live_objects = meta.live_objects.saturating_sub(1);
                            s.dram.remove(hash);
                        }
                        self.metrics.corrupt_reads.incr();
                        self.metrics.record_get(t - now);
                        return Ok((None, t));
                    }
                    if stored_key != key {
                        // Fingerprint collision with a different key.
                        self.index.remove(hash, fp);
                        self.metrics.record_get(t - now);
                        return Ok((None, t));
                    }
                    Bytes::copy_from_slice(&obj[OBJECT_HEADER + entry.key_len as usize..])
                } else {
                    // Sparse-store mode: payloads are not retained, so
                    // neither key nor checksum can be verified.
                    let start = entry.offset as usize + OBJECT_HEADER + entry.key_len as usize;
                    let mut value = vec![0u8; entry.value_len as usize];
                    t = self.retry_io(t, |t| {
                        self.backend.read(entry.region, start, &mut value, t)
                    })?;
                    Bytes::from(value)
                }
            }
        };
        self.index.touch(hash, fp);
        self.metrics.hits.incr();
        self.metrics.record_get(t - now);
        Ok((Some(value), t))
    }

    /// Deletes a key. Returns whether it existed, and the completion time.
    pub fn delete(&self, key: &[u8], now: Nanos) -> (bool, Nanos) {
        let hash = hash_key(key);
        let fp = fingerprint(key);
        let t = now + self.config.lookup_cpu;
        let removed = self.index.remove(hash, fp);
        if let Some(entry) = &removed {
            let mut s = self.state.lock();
            let meta = &mut s.regions[entry.region.0 as usize];
            meta.live_objects = meta.live_objects.saturating_sub(1);
            s.dram.remove(hash);
            self.metrics.deletes.incr();
        }
        (removed.is_some(), t)
    }

    /// Seals and flushes the active buffer even if partially full.
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    pub fn flush(&self, now: Nanos) -> Result<Nanos, CacheError> {
        let mut s = self.state.lock();
        self.seal_active(&mut s, now)
    }

    /// Runs backend maintenance immediately (tests and shutdown paths).
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    pub fn force_maintenance(&self, now: Nanos) -> Result<(), CacheError> {
        let mut s = self.state.lock();
        self.run_maintenance(&mut s, now)
    }

    pub(crate) fn index(&self) -> &Index {
        &self.index
    }

    pub(crate) fn metrics_internal(&self) -> &CacheMetrics {
        &self.metrics
    }

    /// The engine's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Internal: region metadata dump for recovery snapshots.
    pub(crate) fn region_dump(&self) -> Vec<RegionDumpEntry> {
        let s = self.state.lock();
        s.regions
            .iter()
            .enumerate()
            .map(|(i, m)| {
                (
                    i as u32,
                    m.entries.clone(),
                    m.live_objects,
                    m.last_access,
                    m.state == RegionState::Sealed,
                )
            })
            .collect()
    }

    /// Internal: restore region metadata from a recovery snapshot.
    pub(crate) fn region_restore(&self, regions: Vec<RegionDumpEntry>) -> Result<(), CacheError> {
        let mut s = self.state.lock();
        if regions.len() != s.regions.len() {
            return Err(CacheError::BadSnapshot(format!(
                "snapshot has {} regions, backend has {}",
                regions.len(),
                s.regions.len()
            )));
        }
        s.free.clear();
        s.fifo.clear();
        let mut max_seq = 0;
        for (i, entries, live, last_access, sealed) in regions {
            let meta = &mut s.regions[i as usize];
            meta.entries = entries;
            meta.live_objects = live;
            meta.last_access = last_access;
            max_seq = max_seq.max(last_access);
            meta.state = if sealed {
                RegionState::Sealed
            } else {
                RegionState::Free
            };
            if sealed {
                s.fifo.push_back(i);
            } else {
                s.free.push_back(i);
            }
        }
        s.access_seq = max_seq;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BlockBackend;
    use sim::{RamDisk, BLOCK_SIZE};

    /// 16 regions of 16 KiB on a RAM disk.
    fn cache() -> LogCache {
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        LogCache::new(backend, CacheConfig::small_test()).unwrap()
    }

    #[test]
    fn set_get_round_trip_from_buffer_and_flash() {
        let c = cache();
        let t = c.set(b"alpha", b"one", Nanos::ZERO).unwrap();
        // Still in the active buffer.
        let (v, t) = c.get(b"alpha", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"one"[..]));
        // Force it to flash and read again.
        let t = c.flush(t).unwrap();
        let (v, _) = c.get(b"alpha", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"one"[..]));
        assert_eq!(c.metrics().hits, 2);
    }

    #[test]
    fn miss_returns_none() {
        let c = cache();
        let (v, _) = c.get(b"nope", Nanos::ZERO).unwrap();
        assert!(v.is_none());
        assert_eq!(c.metrics().gets, 1);
        assert_eq!(c.metrics().hits, 0);
    }

    #[test]
    fn overwrite_returns_latest() {
        let c = cache();
        let t = c.set(b"k", b"v1", Nanos::ZERO).unwrap();
        let t = c.set(b"k", b"v2", t).unwrap();
        let (v, _) = c.get(b"k", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"v2"[..]));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn delete_removes() {
        let c = cache();
        let t = c.set(b"k", b"v", Nanos::ZERO).unwrap();
        let (existed, t) = c.delete(b"k", t);
        assert!(existed);
        let (v, _) = c.get(b"k", t).unwrap();
        assert!(v.is_none());
        let (existed, _) = c.delete(b"k", t);
        assert!(!existed);
    }

    #[test]
    fn object_too_large_rejected() {
        let c = cache();
        let huge = vec![0u8; 5 * BLOCK_SIZE];
        assert!(matches!(
            c.set(b"k", &huge, Nanos::ZERO),
            Err(CacheError::ObjectTooLarge { .. })
        ));
    }

    #[test]
    fn eviction_kicks_in_when_regions_exhausted() {
        let c = cache();
        // 16 regions of 16 KiB; write ~2x the capacity in 1 KiB objects.
        let value = vec![7u8; 1024 - 32];
        let mut t = Nanos::ZERO;
        let total = 2 * 16 * 16; // objects ≈ 2x capacity
        for i in 0..total {
            let key = format!("key-{i:06}");
            t = c.set(key.as_bytes(), &value, t).unwrap();
        }
        let m = c.metrics();
        assert!(m.evicted_regions > 0, "no eviction: {m:?}");
        assert!(m.evicted_objects > 0);
        // Recently inserted keys must be present; the oldest must be gone.
        let last = format!("key-{:06}", total - 1);
        let (v, _) = c.get(last.as_bytes(), t).unwrap();
        assert!(v.is_some(), "most recent key evicted");
        let (v, _) = c.get(b"key-000000", t).unwrap();
        assert!(v.is_none(), "oldest key survived 2x-capacity churn");
    }

    #[test]
    fn lru_eviction_prefers_cold_regions() {
        let c = cache();
        let value = vec![1u8; 3 * 1024];
        let mut t = Nanos::ZERO;
        // Fill all 16 regions (4 objects each).
        for i in 0..64 {
            let key = format!("k{i:04}");
            t = c.set(key.as_bytes(), &value, t).unwrap();
        }
        t = c.flush(t).unwrap();
        // Keep early keys hot.
        for i in 0..8 {
            let key = format!("k{i:04}");
            let (v, t2) = c.get(key.as_bytes(), t).unwrap();
            assert!(v.is_some());
            t = t2;
        }
        // Insert more to force evictions.
        for i in 64..96 {
            let key = format!("k{i:04}");
            t = c.set(key.as_bytes(), &value, t).unwrap();
        }
        // Hot early keys should have survived longer than cold middle keys.
        let (hot, t2) = c.get(b"k0000", t).unwrap();
        let (cold, _) = c.get(b"k0020", t2).unwrap();
        assert!(hot.is_some() || cold.is_none(), "LRU inverted");
    }

    #[test]
    fn admission_rejects_probabilistically() {
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        let config = CacheConfig {
            admission: Admission::Random { probability: 0.0 },
            ..CacheConfig::small_test()
        };
        let c = LogCache::new(backend, config).unwrap();
        let t = c.set(b"k", b"v", Nanos::ZERO).unwrap();
        let (v, _) = c.get(b"k", t).unwrap();
        assert!(v.is_none());
        assert_eq!(c.metrics().rejected, 1);
    }

    #[test]
    fn dram_tier_serves_hot_objects() {
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        let config = CacheConfig {
            dram_bytes: 64 * 1024,
            ..CacheConfig::small_test()
        };
        let c = LogCache::new(backend, config).unwrap();
        let t = c.set(b"k", b"v", Nanos::ZERO).unwrap();
        let t = c.flush(t).unwrap();
        let (v, t_done) = c.get(b"k", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"v"[..]));
        // DRAM hit: no device latency beyond CPU cost.
        assert_eq!(t_done - t, c.config().lookup_cpu);
    }

    #[test]
    fn too_small_backend_rejected() {
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(8)),
            4 * BLOCK_SIZE,
        ));
        assert!(matches!(
            LogCache::new(backend, CacheConfig::small_test()),
            Err(CacheError::BackendTooSmall)
        ));
    }

    #[test]
    fn flush_pipeline_stalls_when_saturated() {
        // One in-flight buffer: the second seal must wait for the first.
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        let config = CacheConfig {
            in_memory_buffers: 1,
            ..CacheConfig::small_test()
        };
        let c = LogCache::new(backend, config).unwrap();
        let value = vec![1u8; 15 * 1024];
        let t1 = c.set(b"a", &value, Nanos::ZERO).unwrap();
        // Second large set seals buffer 1 (flush in flight) and the third
        // seals buffer 2, which must wait for flush 1.
        let t2 = c.set(b"b", &value, t1).unwrap();
        let t3 = c.set(b"c", &value, t2).unwrap();
        assert!(t3 - t2 >= t2 - t1, "no pipeline stall observed");
    }

    #[test]
    fn ttl_expiry_turns_hits_into_misses() {
        let c = cache();
        let t = c
            .set_with_ttl(b"short", b"v", Some(Nanos::from_millis(5)), Nanos::ZERO)
            .unwrap();
        let t = c.set_with_ttl(b"long", b"v", None, t).unwrap();
        // Before expiry: both hit.
        let (v, t) = c.get(b"short", t).unwrap();
        assert!(v.is_some());
        // Jump past the TTL.
        let late = t + Nanos::from_millis(10);
        let (v, late) = c.get(b"short", late).unwrap();
        assert!(v.is_none(), "expired object served");
        let (v, _) = c.get(b"long", late).unwrap();
        assert!(v.is_some(), "unexpiring object lost");
        assert_eq!(c.metrics().expired, 1);
        // The expired entry is reclaimed from the index.
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn expired_key_can_be_reinserted() {
        let c = cache();
        let t = c
            .set_with_ttl(b"k", b"v1", Some(Nanos::from_millis(1)), Nanos::ZERO)
            .unwrap();
        let late = t + Nanos::from_millis(2);
        let (v, late) = c.get(b"k", late).unwrap();
        assert!(v.is_none());
        let late = c.set(b"k", b"v2", late).unwrap();
        let (v, _) = c.get(b"k", late).unwrap();
        assert_eq!(v.as_deref(), Some(&b"v2"[..]));
    }

    #[test]
    fn reinsertion_rescues_hot_objects_across_eviction() {
        // Two caches, identical churn; one rescues accessed objects.
        let run = |fraction: f64| {
            let backend = Arc::new(BlockBackend::new(
                Arc::new(RamDisk::new(64)),
                4 * BLOCK_SIZE,
            ));
            let config = CacheConfig {
                reinsertion_fraction: fraction,
                eviction: EvictionPolicy::Fifo, // deterministic victim order
                ..CacheConfig::small_test()
            };
            let c = LogCache::new(backend, config).unwrap();
            let value = vec![1u8; 3 * 1024];
            let mut t = Nanos::ZERO;
            t = c.set(b"hot", &value, t).unwrap();
            // Keep "hot" referenced.
            let (v, t2) = c.get(b"hot", t).unwrap();
            assert!(v.is_some());
            t = t2;
            // Churn through more than full capacity so "hot"'s region gets evicted.
            for i in 0..90u32 {
                let key = format!("cold-{i:04}");
                t = c.set(key.as_bytes(), &value, t).unwrap();
            }
            let (v, _) = c.get(b"hot", t).unwrap();
            (v.is_some(), c.metrics().reinserted_objects)
        };
        let (survived_without, reinserted_without) = run(0.0);
        let (survived_with, reinserted_with) = run(0.5);
        assert!(!survived_without, "FIFO churn should evict without policy");
        assert_eq!(reinserted_without, 0);
        assert!(survived_with, "reinsertion should rescue the hot object");
        assert!(reinserted_with > 0);
    }

    #[test]
    fn len_tracks_live_objects() {
        let c = cache();
        assert!(c.is_empty());
        let t = c.set(b"a", b"1", Nanos::ZERO).unwrap();
        let t = c.set(b"b", b"2", t).unwrap();
        c.delete(b"a", t);
        assert_eq!(c.len(), 1);
    }
}
