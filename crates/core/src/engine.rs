//! The log-structured cache engine.
//!
//! Objects are appended into an in-memory *region buffer*; a full buffer is
//! flushed as one large sequential write to a region slot on the backend.
//! When no slot is free, a whole region is evicted (CacheLib's design: the
//! paper's §2.1 "evicts entire regions rather than individual cache
//! objects"). Lookups resolve entirely in the DRAM index and touch flash
//! only for the object bytes.
//!
//! # Concurrency architecture
//!
//! Foreground operations scale with threads (see DESIGN.md §8 for the full
//! model):
//!
//! * **Reads take no engine-wide lock.** A lookup resolves `(region,
//!   offset, len)` under one index-shard lock, *pins* the region (a
//!   per-region reader count), re-confirms the location, performs the
//!   device read and CRC verification completely unlocked, and revalidates
//!   the region's generation counter afterwards. A read that raced an
//!   eviction retries (bounded by `read_retry_attempts`) and otherwise
//!   degrades to a miss — never to wrong bytes.
//! * **Writes reserve, then copy outside the lock.** The writer mutex is
//!   held only to bump the active region's append cursor; the payload copy
//!   into the shared region buffer and the index insert happen after the
//!   lock is dropped. Sealing quiesces on a `committed` byte counter so a
//!   region image is never flushed with a reservation's copy still in
//!   flight. Seals carry a monotone sequence number so recovery restores
//!   FIFO eviction order exactly.
//! * **Eviction runs in a maintainer.** With `clean_region_watermark > 0`,
//!   a [`crate::maintainer::Maintainer`] (a real background thread, or a
//!   test driving it deterministically in simulated time) refills the
//!   clean-region pool. The foreground write path still evicts inline when
//!   the pool runs dry — that is the backpressure contract.
//!
//! Two timing mechanisms matter for reproducing the paper:
//!
//! * **Bounded flush pipeline** — up to `in_memory_buffers` region flushes
//!   may be in flight; sealing a buffer while all slots are busy stalls the
//!   inserter until the oldest flush completes. With zone-sized regions
//!   this is the long "filling time" of Fig. 3.
//! * **Serialized eviction cleanup** — evicting a region removes each of
//!   its index entries under shard locks at a per-entry CPU cost
//!   (`index_remove_cpu`); evicting a 1 GiB region with tens of thousands
//!   of objects visibly stalls insertion, the Fig. 3 jump at the onset of
//!   eviction.

use std::cell::UnsafeCell;
use std::collections::VecDeque;

use bytes::Bytes;
use sim::trace::{self, EventKind};
use sim::{crc32, Crc32, LatencyHistogram, Nanos};

use crate::backend::{RegionBackend, RegionHealth};
use crate::dram::{DramCache, DramEntry};
use crate::index::{Index, IndexEntry};
use crate::io::{EngineIo, FlushTicket, IoClass};
use crate::metrics::{CacheMetrics, CacheMetricsSnapshot, CounterTable};
use crate::policy::{Admission, AdmissionGate, EvictionPolicy};
use crate::protocol::{CleanPool, CommitWindow, Generation, InflightCell, Pins};
use crate::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use crate::sync::{Arc, Mutex, RwLock};
use crate::types::{fingerprint, hash_key, CacheError, RegionId};

/// On-flash object header: `u16 key_len`, `u16 flags` (reserved),
/// `u32 value_len`, `u32 crc` (CRC32 over key + value).
pub const OBJECT_HEADER: usize = 12;

/// Byte offset of the CRC field within [`OBJECT_HEADER`].
pub(crate) const HEADER_CRC_OFFSET: usize = 8;

/// Bounded retry for transient backend I/O failures, with exponential
/// backoff in *simulated* time (the delay is charged to the operation's
/// completion timestamp; nothing sleeps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per I/O (1 = no retry).
    pub attempts: u32,
    /// Delay before the first retry; doubles on each subsequent one.
    pub backoff: Nanos,
    /// Spread each backoff by a deterministic pseudo-random increment of
    /// up to half the delay, derived from (simulated time, attempt,
    /// per-retry-sequence salt, config seed). Without it, N threads that
    /// fail together retry together, collide again, and double in
    /// lockstep — the classic synchronized retry storm. Pure integer
    /// hashing keeps runs reproducible and the policy `Eq`.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Nanos::from_micros(10),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// No retries: every backend error is treated as permanent.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: Nanos::ZERO,
            jitter: false,
        }
    }

    /// The default budget with jitter disabled, for tests that assert
    /// exact retry timing.
    pub fn no_jitter() -> Self {
        RetryPolicy {
            jitter: false,
            ..RetryPolicy::default()
        }
    }
}

/// Configuration for a [`LogCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Region-level eviction policy (paper: LRU).
    pub eviction: EvictionPolicy,
    /// Flash admission policy.
    pub admission: Admission,
    /// DRAM tier capacity in bytes (0 disables the tier).
    pub dram_bytes: usize,
    /// Lock shards for the DRAM tier (rounded up to a power of two). Each
    /// shard is an independent byte-capped LRU holding an equal split of
    /// `dram_bytes`.
    pub dram_shards: usize,
    /// Run the DRAM tier write-back instead of as a read mirror: a set is
    /// absorbed in DRAM (any flash copy is invalidated up front) and only
    /// entries *evicted* from DRAM are demoted into the flash log, so hot
    /// overwrites never touch the device — CacheLib's DRAM→flash demotion
    /// pipeline. The DRAM copy is authoritative and lookups consult it
    /// before the index. A crash loses the DRAM tier, so a snapshot-less
    /// device-scan recovery may resurface the last *demoted* version of a
    /// key (the bounded staleness any write-back tier accepts); mirror
    /// mode (`false`) keeps the strict flash-authoritative semantics.
    pub dram_write_back: bool,
    /// Region buffers that may be in flight at once (CacheLib default: a
    /// small clean-region pool; 2 here).
    pub in_memory_buffers: usize,
    /// CPU cost to serialize and index one inserted object.
    pub insert_cpu: Nanos,
    /// CPU cost of one index lookup.
    pub lookup_cpu: Nanos,
    /// CPU cost to remove one index entry during region eviction, paid by
    /// the evicting thread.
    pub index_remove_cpu: Nanos,
    /// Per-entry cost of an *oversized* eviction (more entries than
    /// `eviction_lock_threshold`): the cleanup then saturates every index
    /// shard and stalls the whole engine — the Fig. 3 contention. This is
    /// a scale-compensation parameter: scaled-down regions hold fewer
    /// objects than the paper's, so the per-object charge is raised to
    /// keep the eviction-stall-to-fill-time ratio at the paper's level.
    pub index_remove_contended_cpu: Nanos,
    /// Verify full keys against flash on lookup (requires a payload-backed
    /// store; disable for sparse-store experiments).
    pub verify_keys: bool,
    /// Eviction cleanups larger than this many entries saturate every
    /// index shard and stall the whole engine; smaller cleanups cost only
    /// the evicting thread (sharded locks absorb them).
    pub eviction_lock_threshold: usize,
    /// Fraction of an evicted region's objects that may be *reinserted*
    /// instead of dropped, chosen among objects read since insertion —
    /// CacheLib's hits-based reinsertion policy. 0.0 disables it.
    pub reinsertion_fraction: f64,
    /// Run backend maintenance (middle-layer GC) every N sets.
    pub maintenance_interval_sets: u32,
    /// Retry budget for transient backend I/O failures.
    pub retry: RetryPolicy,
    /// Attempts for a lookup whose unlocked flash read raced an eviction
    /// (the entry's region generation changed mid-read). Exhaustion
    /// degrades to a miss — under that much churn the object is as good as
    /// evicted.
    pub read_retry_attempts: u32,
    /// Keep at least this many clean (free) regions available, refilled by
    /// the [`crate::maintainer::Maintainer`]. 0 disables background
    /// eviction entirely: every eviction then runs inline on the write
    /// path (the pre-maintainer behavior, and what deterministic
    /// single-thread tests use).
    pub clean_region_watermark: usize,
    /// RNG seed for the admission gate.
    pub seed: u64,
}

impl CacheConfig {
    /// Defaults mirroring the paper's setup (LRU, admit-all, no DRAM tier).
    pub fn small_test() -> Self {
        CacheConfig {
            eviction: EvictionPolicy::Lru,
            admission: Admission::Always,
            dram_bytes: 0,
            dram_shards: 4,
            dram_write_back: false,
            in_memory_buffers: 2,
            insert_cpu: Nanos::from_nanos(2_000),
            lookup_cpu: Nanos::from_nanos(1_000),
            index_remove_cpu: Nanos::from_nanos(300),
            index_remove_contended_cpu: Nanos::from_nanos(300),
            verify_keys: true,
            eviction_lock_threshold: 4096,
            reinsertion_fraction: 0.0,
            maintenance_interval_sets: 16,
            retry: RetryPolicy::default(),
            read_retry_attempts: 3,
            clean_region_watermark: 0,
            seed: 42,
        }
    }
}

/// One region's dumped index state, as recovery snapshots carry it:
/// `(region, entries as (hash, byte offset), live objects, last-access
/// sequence, sealed?, seal sequence)`.
pub(crate) type RegionDumpEntry = (u32, Vec<(u64, u32)>, u32, u64, bool, u64);

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RegionState {
    /// Unused slot.
    Free,
    /// The active in-memory buffer is bound to this slot.
    Active,
    /// Flushed to the backend and readable.
    Sealed,
    /// Taken out of service after a permanent write/discard failure; never
    /// allocated again for the lifetime of this engine.
    Quarantined,
}

/// Mutable region metadata, guarded by the slot's own small mutex (lock
/// order: writer → slot meta → index/DRAM shard; never the reverse).
#[derive(Debug)]
struct RegionMeta {
    state: RegionState,
    /// (key hash, object offset) of every object written to this region.
    entries: Vec<(u64, u32)>,
    /// Monotone seal order, preserved by recovery so FIFO eviction order
    /// survives a restart.
    seal_seq: u64,
    /// Completion cell of the seal that produced this region's image,
    /// set at seal time. The pipeline ticket holding the same cell can
    /// be popped as overflow and resolved by *another* thread, making
    /// the in-flight flush invisible to `w.in_flight` scans — so an
    /// evictor must consult this handle too, wait it out, and recheck
    /// the state: a failed flush's lock-free cleanup quarantines the
    /// slot before completing the cell, and discarding or reusing the
    /// slot before that cleanup finishes would let the quarantine
    /// clobber the slot's next life (seen as an Active region turning
    /// Quarantined mid-write under fault torture). Stale completed
    /// cells are harmless: waiting on one returns immediately.
    flush_cell: Option<Arc<InflightCell>>,
}

/// One region slot: a small mutex for structural metadata plus lock-free
/// fields the hot paths touch.
struct RegionSlot {
    meta: Mutex<RegionMeta>,
    /// Bumped whenever the slot's contents stop being trustworthy: at
    /// eviction start (before index cleanup), on GC drop, on quarantine,
    /// and when the slot is re-activated. Unlocked readers revalidate
    /// against it. See [`crate::protocol::generation`] for the ordering
    /// contract (SeqCst against the pin/drain pair).
    generation: Generation,
    /// Global access sequence at last touch (LRU key).
    last_access: AtomicU64,
    /// Objects not yet superseded or deleted.
    live_objects: AtomicU32,
    /// In-flight unlocked reads. Eviction drains this to zero before the
    /// region's storage is discarded, so a pinned read never observes
    /// reclaimed media.
    pins: Pins,
}

impl RegionSlot {
    fn new() -> Self {
        RegionSlot {
            meta: Mutex::new(RegionMeta {
                state: RegionState::Free,
                entries: Vec::new(),
                seal_seq: 0,
                flush_cell: None,
            }),
            generation: Generation::new(),
            last_access: AtomicU64::new(0),
            live_objects: AtomicU32::new(0),
            pins: Pins::new(),
        }
    }
}

/// The shared in-memory image of the active region. Writers copy into
/// disjoint reserved ranges without any lock; readers serve committed
/// ranges concurrently.
///
/// This is the crate's unsafe core. Its contract, in one paragraph: the
/// writer mutex grants each append a *reservation* — an exclusive,
/// never-reused byte range `offset..offset + size`. Until the owner
/// calls [`CommitWindow::commit`] for it, that range is written by the
/// owner alone and read by nobody. After the commit (and only through an
/// edge that observes it: the index-shard lock of the entry insert, or
/// the `committed` acquire) the range is immutable and may be read
/// freely. Every unsafe method below states which side of that contract
/// the caller must be on. The whole type is exercised under Miri by
/// `scripts/miri.sh` (tests named `buffer_*`), and the reservation /
/// commit / quiesce protocol is model-checked in miniature by
/// `tests/loom.rs`.
struct RegionBuffer {
    region: RegionId,
    data: Box<[UnsafeCell<u8>]>,
    /// Bytes whose payload copy has completed. Sealing quiesces on this
    /// before flushing the image; see [`crate::protocol::commit`].
    commit: CommitWindow,
}

// SAFETY: `Send` — a `RegionBuffer` owns its storage (`Box`) and holds no
// thread-affine state, so moving the (Arc'd) buffer between threads is
// sound. `Sync` — `&self` access is disciplined by the reservation
// contract above: every byte range is written by exactly one thread (the
// reservation owner; ranges are disjoint by construction since the append
// cursor only moves forward under the writer mutex) and becomes immutable
// once committed. Readers only dereference ranges whose commit they
// observed through a synchronizing edge (index-shard lock, or the
// `CommitWindow` release/acquire pair on the seal path), so no byte is
// ever read while it may still be written. `UnsafeCell<u8>` (rather than
// `&mut` aliasing) makes the disjoint-range concurrent writes defined
// behavior. This argument cannot be expressed to the type system — hence
// the manual impls — but it is checked two ways: Miri validates the
// pointer discipline (scripts/miri.sh), and the loom suite explores every
// interleaving of the reserve/commit/read protocol (tests/loom.rs).
unsafe impl Send for RegionBuffer {}
// SAFETY: see the `Send` justification above — the same reservation
// contract covers shared (`&self`) access from multiple threads.
unsafe impl Sync for RegionBuffer {}

impl RegionBuffer {
    fn new(region: RegionId, size: usize) -> Self {
        RegionBuffer {
            region,
            data: (0..size).map(|_| UnsafeCell::new(0u8)).collect(),
            commit: CommitWindow::new(),
        }
    }

    /// Base pointer with provenance for the whole buffer.
    ///
    /// Derived from the slice, not from one element: `self.data[i].get()`
    /// would carry single-element provenance and make any multi-byte
    /// copy through it undefined behavior under Stacked Borrows (the
    /// original form of this code was exactly that bug — Miri catches
    /// it). `UnsafeCell<u8>` is `repr(transparent)`, so the cast is
    /// layout-sound.
    fn base(&self) -> *mut u8 {
        self.data.as_ptr() as *mut u8
    }

    /// Copies `bytes` into the buffer at `offset`.
    ///
    /// # Safety
    ///
    /// The caller must own the (uncommitted) reservation covering
    /// `offset..offset + bytes.len()`: the range was granted to this
    /// thread under the writer mutex, has not been committed, and no
    /// other thread writes or reads it. `offset + bytes.len()` must not
    /// exceed the buffer size (reservations never do; debug-asserted).
    unsafe fn write(&self, offset: usize, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        debug_assert!(
            offset.checked_add(bytes.len()).is_some_and(|end| end <= self.data.len()),
            "write past buffer end: {offset}+{} > {}",
            bytes.len(),
            self.data.len()
        );
        // SAFETY: per the function contract the destination range is
        // in-bounds and exclusively ours; `bytes` is a live shared
        // borrow, so the source cannot overlap the (unaliased,
        // reservation-owned) destination.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.base().add(offset), bytes.len());
        }
    }

    /// Borrows the committed range `offset..offset + len`.
    ///
    /// # Safety
    ///
    /// The range must be committed — e.g. it belongs to an object whose
    /// index entry the caller just observed (the insert happens after
    /// the commit, under a shard lock) — and therefore immutable for the
    /// buffer's remaining lifetime. The range must be in-bounds
    /// (debug-asserted).
    unsafe fn slice(&self, offset: usize, len: usize) -> &[u8] {
        if len == 0 {
            return &[];
        }
        debug_assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.data.len()),
            "slice past buffer end: {offset}+{len} > {}",
            self.data.len()
        );
        // SAFETY: in-bounds per the contract; the range is committed,
        // hence no longer written by anyone, so a shared borrow for the
        // buffer's lifetime cannot alias a mutation.
        unsafe { std::slice::from_raw_parts(self.base().add(offset) as *const u8, len) }
    }

    /// Borrows the whole buffer image (the seal path).
    ///
    /// # Safety
    ///
    /// All reservations must be committed and no further reservation may
    /// be granted while the slice is alive: the sealer holds the writer
    /// mutex (blocking new reservations) and has quiesced on the commit
    /// window (`commit.quiesce(used)`), so every byte is immutable.
    unsafe fn as_slice(&self) -> &[u8] {
        // SAFETY: quiesced and reservation-blocked per the contract —
        // the entire buffer is immutable while the borrow lives. Length
        // is exact by construction.
        unsafe { std::slice::from_raw_parts(self.base() as *const u8, self.data.len()) }
    }
}

struct ActiveRegion {
    buf: Arc<RegionBuffer>,
    /// Append cursor (bytes reserved so far).
    used: usize,
    entries: Vec<(u64, u32)>,
}

/// Everything the append path mutates, behind one small mutex. Device
/// writes (seal) and inline evictions run under it by design: when the
/// clean-region pool is dry, writers must feel the reclamation cost —
/// that is the backpressure contract with the maintainer.
struct WriterState {
    active: Option<ActiveRegion>,
    free: CleanPool,
    /// Seal order for FIFO eviction.
    fifo: VecDeque<u32>,
    /// Tickets of detached region flushes, oldest first. Resolved (waited
    /// and retired) when the pipeline exceeds `in_memory_buffers`, at a
    /// `flush()` barrier, or before the region is evicted — never
    /// opportunistically, so the pipeline stall is charged to the
    /// threads the paper charges it to.
    in_flight: VecDeque<FlushTicket>,
    sets_since_maintenance: u32,
    /// Objects rescued from the last evicted region, waiting to be
    /// appended into the next buffer (reinsertion policy).
    pending_reinserts: Vec<(Vec<u8>, Vec<u8>, Nanos)>,
    next_seal_seq: u64,
}

/// A detached flush: the sealed region image plus the completion cell its
/// submitter fills. Created under the writer mutex by
/// [`LogCache::seal_detach`]; the device call runs in
/// [`LogCache::submit_flush`] with *no engine lock held*.
struct SealJob {
    buf: Arc<RegionBuffer>,
    cell: Arc<InflightCell>,
}

enum TryGet {
    Hit(Bytes),
    Miss,
    /// The unlocked read raced an eviction/seal; retry the lookup.
    Stale,
}

/// What one [`LogCache::scrub`] pass found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Sealed regions walked.
    pub regions_scanned: u64,
    /// Objects whose stored CRC no longer matched (invalidated: they are
    /// served as misses from now on, never as bad bytes).
    pub corrupt_objects: u64,
    /// Live objects migrated off degrading (read-only) regions.
    pub salvaged_objects: u64,
    /// Bytes of key+value payload salvaged.
    pub salvaged_bytes: u64,
    /// Regions retired (quarantined) because their media degraded.
    pub retired_regions: u64,
    /// Completion time of the pass.
    pub done: Nanos,
}

/// A hybrid (DRAM + flash) log-structured cache over a [`RegionBackend`].
///
/// All methods take `&self` and are safe to call from many threads; see
/// the module docs for the concurrency model.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct LogCache {
    backend: Arc<dyn RegionBackend>,
    config: CacheConfig,
    index: Index,
    slots: Vec<RegionSlot>,
    writer: Mutex<WriterState>,
    /// Read-side handle to the active region buffer, kept only while the
    /// region is actually active (cleared at seal) so sealed regions are
    /// served from flash like before.
    active_ro: RwLock<Option<Arc<RegionBuffer>>>,
    /// Detached flush images whose tickets are unresolved. Reads of these
    /// regions are served from RAM: until the ticket resolves the data is
    /// not guaranteed on flash (correctness), and afterwards the image is
    /// dropped only at resolution, keeping the most recently sealed — and
    /// hottest — region at DRAM latency (the Zone-Cache p99 lever).
    /// Bounded by the flush pipeline depth (`in_memory_buffers`).
    sealing_ro: RwLock<Vec<Arc<RegionBuffer>>>,
    /// Submission/completion accounting for every backend call.
    io: EngineIo,
    /// Lock-striped DRAM tier; empty when `dram_bytes == 0`.
    dram: Vec<Mutex<DramCache>>,
    /// Per-DRAM-shard supersession epochs, one per shard (write-back
    /// mode's demote/invalidate crossing, DESIGN.md §10): every set or
    /// delete touching a shard bumps its epoch *under the shard lock,
    /// before* touching the flash index; a demotion samples the epoch
    /// when its entry is evicted and, after publishing to the index,
    /// un-publishes if the epoch moved — the demoted version may have
    /// been superseded while the demotion was in flight.
    dram_epochs: Vec<Generation>,
    admission: Mutex<AdmissionGate>,
    /// Fast path: `Admission::Always` never needs the gate's RNG.
    admit_all: bool,
    access_seq: AtomicU64,
    /// Index-wide stall deadline (ns) from oversized region-eviction
    /// cleanup: every operation entering the engine waits for it. This is
    /// the shared-index lock contention the paper holds responsible for
    /// the Fig. 3 insertion jump.
    stall_until: AtomicU64,
    /// High-water mark of observed simulated time, so a wall-clock
    /// background maintainer can run "at" a meaningful sim timestamp.
    clock_hwm: AtomicU64,
    /// `inline_evictions` count as of the last maintenance pass. The
    /// delta since then is the backpressure signal: each inline eviction
    /// means a foreground writer found the clean pool dry, so the next
    /// pass raises its target above the static watermark to get ahead.
    pressure_seen: AtomicU64,
    /// Per-retry-sequence salt: each `retry_io` call draws a fresh value
    /// so two operations that fail at the same simulated instant still
    /// jitter apart (see [`RetryPolicy::jitter`]).
    retry_salt: AtomicU64,
    metrics: CacheMetrics,
    /// Seal count per region slot (sized at construction).
    region_seals: CounterTable,
    /// Eviction count per region slot (sized at construction).
    region_evictions: CounterTable,
}

impl core::fmt::Debug for LogCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LogCache")
            .field("scheme", &self.backend.label())
            .field("regions", &self.backend.num_regions())
            .field("metrics", &self.metrics.snapshot())
            .finish()
    }
}

impl LogCache {
    /// Builds a cache over `backend`.
    ///
    /// # Errors
    ///
    /// [`CacheError::BackendTooSmall`] when fewer than 3 region slots are
    /// available (one active + one sealed + one to evict).
    pub fn new(backend: Arc<dyn RegionBackend>, config: CacheConfig) -> Result<Self, CacheError> {
        if backend.num_regions() < 3 {
            return Err(CacheError::BackendTooSmall);
        }
        let n = backend.num_regions();
        let slots = (0..n).map(|_| RegionSlot::new()).collect();
        let dram = if config.dram_bytes == 0 {
            Vec::new()
        } else {
            let shards = config.dram_shards.max(1).next_power_of_two();
            let per_shard = config.dram_bytes.div_ceil(shards);
            (0..shards).map(|_| Mutex::new(DramCache::new(per_shard))).collect()
        };
        let dram_epochs = (0..dram.len()).map(|_| Generation::new()).collect();
        Ok(LogCache {
            index: Index::new(),
            slots,
            writer: Mutex::new(WriterState {
                active: None,
                free: (0..n).collect(),
                fifo: VecDeque::new(),
                in_flight: VecDeque::new(),
                sets_since_maintenance: 0,
                pending_reinserts: Vec::new(),
                next_seal_seq: 0,
            }),
            active_ro: RwLock::new(None),
            sealing_ro: RwLock::new(Vec::new()),
            io: EngineIo::new(),
            dram,
            dram_epochs,
            admission: Mutex::new(AdmissionGate::new(config.admission, config.seed)),
            admit_all: config.admission == Admission::Always,
            access_seq: AtomicU64::new(0),
            stall_until: AtomicU64::new(0),
            clock_hwm: AtomicU64::new(0),
            pressure_seen: AtomicU64::new(0),
            retry_salt: AtomicU64::new(0),
            metrics: CacheMetrics::default(),
            region_seals: CounterTable::new(n as usize),
            region_evictions: CounterTable::new(n as usize),
            backend,
            config,
        })
    }

    /// The backend (for scheme-level statistics).
    pub fn backend(&self) -> &Arc<dyn RegionBackend> {
        &self.backend
    }

    /// Cache metrics snapshot.
    pub fn metrics(&self) -> CacheMetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Per-region seal counts, indexed by region id.
    pub fn region_seal_counts(&self) -> Vec<u64> {
        self.region_seals.snapshot()
    }

    /// Per-region eviction counts, indexed by region id.
    pub fn region_eviction_counts(&self) -> Vec<u64> {
        self.region_evictions.snapshot()
    }

    /// Lookup-latency histogram (copied).
    pub fn get_latency(&self) -> LatencyHistogram {
        self.metrics.get_latency_snapshot()
    }

    /// Insert-latency histogram (copied).
    pub fn set_latency(&self) -> LatencyHistogram {
        self.metrics.set_latency_snapshot()
    }

    /// End-to-end write amplification (media bytes / cache flush bytes).
    pub fn write_amplification(&self) -> f64 {
        self.backend.write_amplification()
    }

    /// Live object count in the index.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache holds no objects.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Latest simulated timestamp any foreground operation has presented.
    /// Background maintenance uses this as its notion of "now".
    pub fn observed_clock(&self) -> Nanos {
        // relaxed-ok: monotone high-water mark; any recent value serves.
        Nanos::from_nanos(self.clock_hwm.load(Ordering::Relaxed))
    }

    /// Clean (immediately allocatable) region slots.
    pub fn clean_regions(&self) -> usize {
        self.writer.lock().free.len()
    }

    /// Backend operations submitted but not yet completed, across all
    /// I/O classes. Zero whenever the engine is quiescent (no detached
    /// flush in flight, no read or maintenance op mid-call); tests use
    /// this to prove no operation ever leaks.
    pub fn io_in_flight(&self) -> u64 {
        self.io.in_flight()
    }

    fn observe_clock(&self, now: Nanos) {
        // relaxed-ok: monotone max; no other memory is published with it.
        self.clock_hwm.fetch_max(now.as_nanos(), Ordering::Relaxed);
    }

    fn stall_deadline(&self) -> Nanos {
        // relaxed-ok: advisory deadline; a late read only shortens a
        // simulated stall, it cannot corrupt state.
        Nanos::from_nanos(self.stall_until.load(Ordering::Relaxed))
    }

    fn raise_stall(&self, until: Nanos) {
        // relaxed-ok: monotone max of an advisory deadline.
        self.stall_until.fetch_max(until.as_nanos(), Ordering::Relaxed);
    }

    fn admit(&self) -> bool {
        self.admit_all || self.admission.lock().admit()
    }

    fn dram_shard(&self, hash: u64) -> Option<&Mutex<DramCache>> {
        if self.dram.is_empty() {
            None
        } else {
            // High bits: the index shards already consume the low bits.
            Some(&self.dram[(hash >> 32) as usize & (self.dram.len() - 1)])
        }
    }

    /// The supersession epoch of `hash`'s DRAM shard (same indexing as
    /// [`Self::dram_shard`]; the two vectors are sized together).
    fn dram_epoch(&self, hash: u64) -> Option<&Generation> {
        if self.dram_epochs.is_empty() {
            None
        } else {
            Some(&self.dram_epochs[(hash >> 32) as usize & (self.dram_epochs.len() - 1)])
        }
    }

    fn dec_live(&self, region: RegionId) {
        // relaxed-ok: statistics counter (eviction scoring input only).
        let _ = self.slots[region.0 as usize].live_objects.fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |v| Some(v.saturating_sub(1)),
        );
    }

    /// Drops an invalidated entry's per-region and DRAM footprint.
    fn on_entry_invalidated(&self, hash: u64, region: RegionId) {
        self.dec_live(region);
        // Mirror mode: the DRAM copy is a replica of the flash entry and
        // dies with it. Write-back mode: a resident DRAM copy is *newer*
        // than any flash entry (the authority rule, DESIGN.md §10) and
        // must survive the flash copy's invalidation.
        if !self.config.dram_write_back {
            if let Some(shard) = self.dram_shard(hash) {
                shard.lock().remove(hash);
            }
        }
    }

    fn object_size(key: &[u8], value: &[u8]) -> usize {
        OBJECT_HEADER + key.len() + value.len()
    }

    /// Deterministic backoff jitter: a splitmix64-style hash of the
    /// simulated time, attempt number, per-sequence salt and config seed,
    /// scaled to `[0, delay/2]`. No wall clock, no shared RNG: identical
    /// runs produce identical jitter, but concurrent retry sequences
    /// (distinct salts) spread out instead of re-colliding in lockstep.
    fn retry_jitter(&self, delay: Nanos, t: Nanos, attempt: u32, salt: u64) -> Nanos {
        let span = delay.as_nanos() / 2;
        if !self.config.retry.jitter || span == 0 {
            return Nanos::ZERO;
        }
        let mut x = t
            .as_nanos()
            .wrapping_add((attempt as u64) << 48)
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ self.config.seed;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        Nanos::from_nanos(x % (span + 1))
    }

    /// Runs a backend I/O under the configured retry budget. Transient
    /// device errors ([`CacheError::Io`]) are retried with exponential
    /// simulated-time backoff (jittered; see [`RetryPolicy::jitter`]);
    /// anything else — and exhaustion of the budget — propagates.
    fn retry_io(
        &self,
        mut t: Nanos,
        mut op: impl FnMut(Nanos) -> Result<Nanos, CacheError>,
    ) -> Result<Nanos, CacheError> {
        let attempts = self.config.retry.attempts.max(1);
        let mut delay = self.config.retry.backoff;
        let mut attempt = 1;
        // relaxed-ok: the salt only needs to be distinct per sequence;
        // no ordering with any other memory is required.
        let salt = self.retry_salt.fetch_add(1, Ordering::Relaxed);
        // A `loop` rather than `for attempt in 1..=attempts`: every arm
        // returns or continues, so exhaustion is handled in-band and no
        // `unreachable!()` is needed after the loop (the public API must
        // not have panic paths; `cargo xtask lint` enforces this).
        loop {
            match op(t) {
                Ok(done) => return Ok(done),
                Err(CacheError::Io(msg)) => {
                    if attempt >= attempts {
                        self.metrics.retries_exhausted.incr();
                        return Err(CacheError::Io(msg));
                    }
                    attempt += 1;
                    self.metrics.retries.incr();
                    let pause = delay + self.retry_jitter(delay, t, attempt, salt);
                    trace::emit(EventKind::IoRetry, t, attempt as u64, pause.as_nanos());
                    t += pause;
                    delay = delay * 2;
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Takes a region slot permanently out of service. The slot is never
    /// returned to the free list; capacity shrinks by one region.
    fn quarantine(&self, w: &mut WriterState, region: u32) {
        w.fifo.retain(|&r| r != region);
        self.quarantine_slot(region);
    }

    /// The writer-lock-free part of quarantine, used by the flush
    /// submitter's error path, which by contract holds no engine lock.
    /// Any stale fifo entry for the slot is harmless: `pick_victim` only
    /// accepts `Sealed` slots, and a quarantined slot never is again.
    fn quarantine_slot(&self, region: u32) {
        let slot = &self.slots[region as usize];
        {
            let mut meta = slot.meta.lock();
            meta.state = RegionState::Quarantined;
            meta.entries.clear();
        }
        slot.live_objects.store(0, Ordering::Relaxed); // relaxed-ok: statistic
        trace::emit(
            EventKind::RegionQuarantine,
            self.observed_clock(),
            region as u64,
            0,
        );
        self.metrics.quarantined_regions.incr();
        self.metrics
            .quarantined_bytes
            .add(self.backend.region_size() as u64);
    }

    /// CRC32 over an object's key + value, as stored in its header.
    fn object_crc(key: &[u8], value: &[u8]) -> u32 {
        let mut c = Crc32::new();
        c.update(key);
        c.update(value);
        c.finalize()
    }

    /// The stored CRC field of a serialized object header, or `None` when
    /// the slice is too short to hold one (a torn/short read must surface
    /// as corruption, not as an index-out-of-bounds panic).
    fn header_crc(obj: &[u8]) -> Option<u32> {
        obj.get(HEADER_CRC_OFFSET..OBJECT_HEADER)?
            .try_into()
            .ok()
            .map(u32::from_le_bytes)
    }

    /// Picks an eviction victim among sealed regions.
    fn pick_victim(&self, w: &mut WriterState) -> Option<u32> {
        match self.config.eviction {
            EvictionPolicy::Fifo => {
                while let Some(r) = w.fifo.pop_front() {
                    if self.slots[r as usize].meta.lock().state == RegionState::Sealed {
                        return Some(r);
                    }
                }
                None
            }
            EvictionPolicy::Lru => self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.meta.lock().state == RegionState::Sealed)
                // relaxed-ok: recency stamp; LRU choice may be approximate.
                .min_by_key(|(_, s)| s.last_access.load(Ordering::Relaxed))
                .map(|(i, _)| i as u32),
        }
    }

    /// Evicts one sealed region and returns its (now clean) slot id plus
    /// the time after the serialized cleanup. The caller decides whether
    /// the slot goes to the free pool (maintainer) or straight into use
    /// (inline backpressure path).
    ///
    /// A victim whose discard keeps failing through the retry budget is
    /// quarantined and the next victim is tried — one bad region must not
    /// wedge the whole cache. Eviction metrics are counted only after the
    /// discard succeeds.
    fn evict_one(&self, w: &mut WriterState, now: Nanos) -> Result<(u32, Nanos), CacheError> {
        let mut now = now;
        loop {
            let victim = self.pick_victim(w).ok_or_else(|| {
                CacheError::Io("no region available: nothing sealed to evict".into())
            })?;
            // A victim whose flush is still in flight must land before its
            // storage is discarded. Reap its ticket first; waiting here
            // cannot deadlock because the submitter completes the cell
            // without ever taking the writer lock.
            if let Some(pos) = w.in_flight.iter().position(|tk| tk.region == victim) {
                if let Some(ticket) = w.in_flight.remove(pos) {
                    now = now.max(ticket.cell.wait_done());
                }
            }
            // The ticket may already have been popped as pipeline
            // overflow and be mid-resolve on another thread, so the scan
            // above can miss a still-unresolved flush. The slot's own
            // cell covers that window; after the wait, recheck the state:
            // a *failed* flush's lock-free cleanup quarantines the slot
            // (completing the cell only afterwards), and that victim must
            // be skipped, not discarded and reused.
            let flush_cell = self.slots[victim as usize].meta.lock().flush_cell.clone();
            if let Some(cell) = flush_cell {
                now = now.max(cell.wait_done());
            }
            if self.slots[victim as usize].meta.lock().state != RegionState::Sealed {
                continue;
            }
            self.drop_sealing(victim);
            let slot = &self.slots[victim as usize];
            // Invalidate *before* the index cleanup: an unlocked read that
            // sampled the old generation will refuse data from this slot.
            slot.generation.invalidate();
            let entries = {
                let mut meta = slot.meta.lock();
                meta.state = RegionState::Free;
                std::mem::take(&mut meta.entries)
            };
            slot.live_objects.store(0, Ordering::Relaxed); // relaxed-ok: statistic
            // Reinsertion policy: rescue a bounded share of still-referenced
            // objects by reading them back before the region is discarded.
            // Rescue is best-effort: unreadable or corrupt objects are
            // simply not rescued.
            if self.config.reinsertion_fraction > 0.0 {
                let budget = ((entries.len() as f64) * self.config.reinsertion_fraction) as usize;
                let mut rescued = 0usize;
                for &(hash, offset) in &entries {
                    if rescued >= budget {
                        break;
                    }
                    let Some(e) = self.index.get_at(hash, RegionId(victim), offset) else {
                        continue;
                    };
                    if !e.accessed || e.expiry <= now {
                        continue;
                    }
                    let len = OBJECT_HEADER + e.key_len as usize + e.value_len as usize;
                    let mut obj = vec![0u8; len];
                    match self.io.run(IoClass::Maintenance, || {
                        self.retry_io(now, |t| {
                            self.backend.read(RegionId(victim), offset as usize, &mut obj, t)
                        })
                    }) {
                        Ok(t) => now = t,
                        Err(_) => continue,
                    }
                    let key = &obj[OBJECT_HEADER..OBJECT_HEADER + e.key_len as usize];
                    let value = &obj[OBJECT_HEADER + e.key_len as usize..];
                    let Some(stored_crc) = Self::header_crc(&obj) else {
                        self.metrics.corrupt_reads.incr();
                        continue;
                    };
                    if stored_crc != Self::object_crc(key, value) {
                        self.metrics.corrupt_reads.incr();
                        continue;
                    }
                    w.pending_reinserts.push((key.to_vec(), value.to_vec(), e.expiry));
                    rescued += 1;
                }
                self.metrics.reinserted_objects.add(rescued as u64);
            }
            // Serialized index cleanup: the eviction cost that grows with
            // region size (Fig. 3's jump).
            let mut removed = 0u64;
            for &(hash, offset) in &entries {
                if self.index.remove_if_at(hash, RegionId(victim), offset) {
                    removed += 1;
                }
            }
            let mut t = now + self.config.index_remove_cpu * entries.len() as u64;
            // Small cleanups hide behind sharded index locks; a huge one (a
            // zone-sized region) touches every shard continuously and stalls
            // the whole engine — the paper's Fig. 3 contention.
            if entries.len() > self.config.eviction_lock_threshold {
                let stall = now + self.config.index_remove_contended_cpu * entries.len() as u64;
                self.raise_stall(stall);
                t = t.max(stall);
            }
            // Wait out in-flight pinned reads: nobody may be mid-read on
            // storage we are about to reclaim.
            slot.pins.drain();
            match self.io.run(IoClass::Maintenance, || {
                self.retry_io(t, |t| self.backend.discard_region(RegionId(victim), t))
            }) {
                Ok(t) => {
                    self.metrics.evicted_objects.add(removed);
                    self.metrics.evicted_regions.incr();
                    self.region_evictions.incr(victim as usize);
                    trace::emit(EventKind::RegionEvict, t, victim as u64, removed);
                    return Ok((victim, t));
                }
                Err(_) => {
                    // Permanent discard failure: the slot's storage cannot
                    // be reclaimed safely. Quarantine it and evict another.
                    self.quarantine(w, victim);
                    now = t;
                }
            }
        }
    }

    /// Acquires a free region slot, evicting inline if the clean pool is
    /// dry (the maintainer's backpressure path).
    fn acquire_region(&self, w: &mut WriterState, now: Nanos) -> Result<(u32, Nanos), CacheError> {
        if let Some(r) = w.free.pop() {
            debug_assert_eq!(self.slots[r as usize].meta.lock().state, RegionState::Free);
            return Ok((r, now));
        }
        self.metrics.inline_evictions.incr();
        let (victim, t) = self.evict_one(w, now)?;
        trace::emit(EventKind::InlineEviction, t, victim as u64, 0);
        Ok((victim, t))
    }

    /// Evicts until at least `clean_region_watermark` free regions exist,
    /// then runs one backend maintenance pass (GC / filesystem cleaning).
    /// Driven by the [`crate::maintainer::Maintainer`] — either its
    /// background thread or a test calling it at a chosen simulated time.
    /// Returns the evicted regions in order (deterministic for a given
    /// cache state, which the maintainer determinism test relies on).
    ///
    /// The eviction target adapts to backpressure: every inline eviction
    /// since the previous pass means a foreground writer drained the pool
    /// faster than this thread refilled it, so the target grows by that
    /// delta (bounded to a quarter of all slots). With no inline
    /// evictions the target is exactly the configured watermark, which
    /// keeps single-threaded runs and determinism tests bit-identical.
    ///
    /// # Errors
    ///
    /// Backend maintenance failures. Running out of sealed victims is not
    /// an error — the pass simply stops.
    pub fn maintain(&self, now: Nanos) -> Result<Vec<RegionId>, CacheError> {
        let watermark = self.config.clean_region_watermark;
        let mut evicted = Vec::new();
        if watermark == 0 {
            return Ok(evicted);
        }
        // relaxed-ok: pacing heuristic; a stale count only shifts work
        // between consecutive passes.
        let inline_now = self.metrics.inline_evictions.get();
        // relaxed-ok: see above.
        let prev = self.pressure_seen.swap(inline_now, Ordering::Relaxed);
        let pressure = inline_now.saturating_sub(prev) as usize;
        let target = watermark + pressure.min(self.slots.len() / 4);
        let mut w = self.writer.lock();
        let mut t = now;
        while w.free.len() < target {
            // lock-ok: eviction rewrites the free list and slot states,
            // which only the writer lock owns; the backend discard it
            // issues is metadata-only on the simulated device.
            match self.evict_one(&mut w, t) {
                Ok((victim, t2)) => {
                    w.free.push(victim);
                    evicted.push(RegionId(victim));
                    self.metrics.maintainer_evictions.incr();
                    trace::emit(EventKind::MaintainerEviction, t2, victim as u64, 0);
                    t = t2;
                }
                // Nothing sealed left to evict: the pass is done.
                Err(_) => break,
            }
        }
        // Backend-level maintenance (middle-layer GC, filesystem
        // cleaning) also belongs to the background thread. Before this
        // ran only on the foreground set path every
        // `maintenance_interval_sets` inserts, so File-Cache's cleaner
        // dug writers into the free-zone floor and they cleaned inline
        // under their own op latency.
        // lock-ok: deliberate backpressure — holding the writer lock
        // through backend GC stalls foreground writers instead of letting
        // them outrun the empty-zone floor.
        self.run_maintenance(&mut w, t)?;
        Ok(evicted)
    }

    /// One scrubber pass: walk every sealed region, CRC-verify its live
    /// objects, and salvage-migrate data off degrading media before it
    /// goes dark (see DESIGN.md §7). Driven by the
    /// [`crate::maintainer::Maintainer`] on a simulated-time cadence.
    ///
    /// Invariants the pass maintains:
    ///
    /// * An object that fails its checksum is invalidated on the spot —
    ///   after a scrub pass no latent corruption in a sealed region can
    ///   ever be served (it becomes a miss).
    /// * A region whose backend reports [`RegionHealth::Degraded`] has
    ///   every live, verified object re-inserted through the normal write
    ///   path (landing in a fresh region) and is then retired; one whose
    ///   backend reports [`RegionHealth::Dead`] is retired immediately —
    ///   its objects are unreachable and become misses.
    /// * Retired regions are quarantined: capacity shrinks and the slot
    ///   is never allocated again, so eviction watermarks stay correct.
    ///
    /// [`RegionHealth::Degraded`]: crate::backend::RegionHealth::Degraded
    /// [`RegionHealth::Dead`]: crate::backend::RegionHealth::Dead
    ///
    /// # Errors
    ///
    /// Salvage re-insertion failures (backend write errors after the
    /// retry budget and reroute). Read failures and corruption are
    /// handled in-band, not errors.
    pub fn scrub(&self, now: Nanos) -> Result<ScrubReport, CacheError> {
        self.observe_clock(now);
        let mut report = ScrubReport::default();
        let mut t = now;
        let sealed: Vec<u32> = (0..self.slots.len() as u32)
            .filter(|&r| self.slots[r as usize].meta.lock().state == RegionState::Sealed)
            .collect();
        trace::emit(EventKind::ScrubStart, now, sealed.len() as u64, 0);
        for region in sealed {
            self.scrub_region(region, &mut report, &mut t)?;
        }
        self.metrics.scrub_passes.incr();
        trace::emit(
            EventKind::ScrubStop,
            t,
            report.regions_scanned,
            report.corrupt_objects,
        );
        report.done = t;
        Ok(report)
    }

    /// Scrubs one region: verify, salvage, retire as its health demands.
    fn scrub_region(
        &self,
        region: u32,
        report: &mut ScrubReport,
        t: &mut Nanos,
    ) -> Result<(), CacheError> {
        let slot = &self.slots[region as usize];
        let entries = {
            let meta = slot.meta.lock();
            if meta.state != RegionState::Sealed {
                return Ok(()); // raced with eviction since the snapshot
            }
            meta.entries.clone()
        };
        report.regions_scanned += 1;
        let health = self.backend.region_health(RegionId(region));
        if health == RegionHealth::Dead {
            // Nothing below a dead zone's surface is reachable: every
            // remaining object becomes a miss, the slot leaves service.
            self.retire_region(region);
            self.metrics.zones_offline.incr();
            report.retired_regions += 1;
            trace::emit(EventKind::ScrubSalvage, *t, region as u64, 0);
            return Ok(());
        }
        let salvage = health == RegionHealth::Degraded;
        let mut salvaged_bytes = 0u64;
        for (hash, offset) in entries {
            let Some(e) = self.index.get_at(hash, RegionId(region), offset) else {
                continue; // superseded or deleted since the seal
            };
            if e.expiry <= *t {
                continue; // already dead weight; lazy reclamation handles it
            }
            let len = OBJECT_HEADER + e.key_len as usize + e.value_len as usize;
            let mut obj = vec![0u8; len];
            // Pin only for the read: the salvage insert below takes the
            // writer lock, and an eviction draining our own pin while we
            // wait there would deadlock.
            let read = {
                let _pin = slot.pins.pin();
                let gen = slot.generation.sample();
                let r = self.io.run(IoClass::Maintenance, || {
                    self.retry_io(*t, |t| {
                        self.backend.read(RegionId(region), offset as usize, &mut obj, t)
                    })
                });
                if slot.generation.changed_since(gen) {
                    return Ok(()); // region evicted mid-scrub; its entries are gone
                }
                r
            };
            let verified = match read {
                Ok(done) => {
                    *t = done;
                    let key_end = OBJECT_HEADER + e.key_len as usize;
                    Self::header_crc(&obj) == Some(crc32(&obj[OBJECT_HEADER..]))
                        && obj.len() >= key_end
                }
                // Unreadable: treat like corruption — the object can no
                // longer be proven intact, so it must not be served.
                Err(_) => false,
            };
            if !verified {
                if self.index.remove_if_at(hash, RegionId(region), offset) {
                    self.on_entry_invalidated(hash, RegionId(region));
                }
                self.metrics.corrupt_reads.incr();
                self.metrics.scrub_corrupt_objects.incr();
                report.corrupt_objects += 1;
                continue;
            }
            if salvage {
                let key = &obj[OBJECT_HEADER..OBJECT_HEADER + e.key_len as usize];
                let value = &obj[OBJECT_HEADER + e.key_len as usize..];
                let ttl = if e.expiry == Nanos::MAX {
                    None
                } else {
                    Some(e.expiry - *t)
                };
                *t = self.set_with_ttl(key, value, ttl, *t)?;
                salvaged_bytes += (key.len() + value.len()) as u64;
                self.metrics.scrub_salvaged_objects.incr();
                report.salvaged_objects += 1;
            }
        }
        if salvage {
            // Every live object now has a fresh copy; take the region out
            // of service before the zone falls all the way to offline.
            self.retire_region(region);
            self.metrics.zones_readonly.incr();
            self.metrics.scrub_salvaged_bytes.add(salvaged_bytes);
            report.salvaged_bytes += salvaged_bytes;
            report.retired_regions += 1;
            trace::emit(EventKind::ScrubSalvage, *t, region as u64, salvaged_bytes);
        }
        Ok(())
    }

    /// Takes a sealed region whose media degraded out of service:
    /// invalidates its remaining index entries, waits out pinned readers,
    /// and quarantines the slot (capacity shrinks permanently).
    fn retire_region(&self, region: u32) {
        let mut w = self.writer.lock();
        let slot = &self.slots[region as usize];
        let entries = {
            let mut meta = slot.meta.lock();
            if meta.state != RegionState::Sealed {
                return; // raced with eviction; nothing left to retire
            }
            std::mem::take(&mut meta.entries)
        };
        // Invalidate before the index cleanup, exactly like eviction: an
        // unlocked read that sampled the old generation must refuse data
        // from this slot.
        slot.generation.invalidate();
        for &(hash, offset) in &entries {
            if self.index.remove_if_at(hash, RegionId(region), offset) {
                self.on_entry_invalidated(hash, RegionId(region));
            }
        }
        slot.pins.drain();
        // lock-ok: quarantining edits the slot table, which the writer
        // lock owns; no foreground progress is possible for a region
        // that just failed its media check anyway.
        self.quarantine(&mut w, region);
    }

    /// Detaches the active buffer as a flush job, all under the writer
    /// lock and with zero device I/O: quiesce the commit window, mark the
    /// slot sealed, enqueue a pipeline ticket, and publish the image for
    /// RAM serves. Also pops any tickets beyond the pipeline depth; the
    /// caller must resolve those — and submit the job — *after* releasing
    /// the writer lock, so the device never runs under it.
    fn seal_detach(&self, w: &mut WriterState) -> (Option<SealJob>, Vec<FlushTicket>) {
        let Some(active) = w.active.take() else {
            return (None, Vec::new());
        };
        let ActiveRegion { buf, used, entries } = active;
        // Quiesce: every granted reservation's payload copy must land
        // before the image is flushed (reservations are only granted under
        // the writer lock, which we hold, so no new ones can start).
        buf.commit.quiesce(used);
        // Flush pipeline: hand the caller the oldest tickets once all
        // buffers are busy; resolving them is the stall the inserter pays.
        let mut over = Vec::new();
        while w.in_flight.len() >= self.config.in_memory_buffers.max(1) {
            match w.in_flight.pop_front() {
                Some(oldest) => over.push(oldest),
                None => break,
            }
        }
        let slot = &self.slots[buf.region.0 as usize];
        let live = entries.len() as u32;
        let cell = Arc::new(InflightCell::new());
        {
            let mut meta = slot.meta.lock();
            debug_assert_eq!(meta.state, RegionState::Active);
            meta.state = RegionState::Sealed;
            meta.entries = entries;
            meta.seal_seq = w.next_seal_seq;
            // Evictors wait on this before touching the slot, so a
            // failed flush's cleanup can never race a reuse (see the
            // field's doc).
            meta.flush_cell = Some(Arc::clone(&cell));
        }
        w.next_seal_seq += 1;
        slot.live_objects.store(live, Ordering::Relaxed); // relaxed-ok: statistic
        // relaxed-ok: recency stamps for approximate LRU scoring.
        slot.last_access
            .store(self.access_seq.load(Ordering::Relaxed), Ordering::Relaxed);
        w.fifo.push_back(buf.region.0);
        w.in_flight.push_back(FlushTicket {
            region: buf.region.0,
            cell: Arc::clone(&cell),
        });
        // Publish the image for RAM serves *before* clearing the active
        // handle: a reader that sees `active_ro == None` then also sees
        // this push (both edges go through the `active_ro` lock), so no
        // read can fall through to flash before the flush has landed.
        self.sealing_ro.write().push(Arc::clone(&buf));
        *self.active_ro.write() = None;
        (Some(SealJob { buf, cell }), over)
    }

    /// Submits a detached flush to the backend. Holds no engine lock —
    /// that is the submit-to-complete contract (`cargo xtask lint`) and
    /// what lets other writers fill the next buffer while the device
    /// programs this one. Always completes the job's cell, success or
    /// failure, so a pipeline waiter can never hang.
    fn submit_flush(&self, job: SealJob, now: Nanos) -> Result<Nanos, CacheError> {
        let SealJob { buf, cell } = job;
        let region = buf.region;
        self.io.submitted(IoClass::Flush);
        // The buffer was zero-initialized, so the tail past `used` is
        // already padding.
        // SAFETY: quiesced in `seal_detach`, and the buffer is detached
        // from the writer state — no reservation can ever target it again.
        let image = unsafe { buf.as_slice() };
        let write = self.retry_io(now, |t| self.backend.write_region(region, image, t));
        match write {
            Ok(done) => {
                self.metrics.flushes.incr();
                self.metrics
                    .bytes_flushed
                    .add(self.backend.region_size() as u64);
                self.region_seals.incr(region.0 as usize);
                trace::emit(
                    EventKind::RegionSeal,
                    done,
                    region.0 as u64,
                    self.backend.region_size() as u64,
                );
                cell.complete(done);
                self.io.completed(IoClass::Flush);
                Ok(done)
            }
            Err(e) => {
                // Permanent flush failure: this is a cache, so the buffered
                // objects may be dropped — but the index must not point at
                // unwritten storage, and the slot (whose media just proved
                // unwritable) is quarantined rather than recycled. Cleanup
                // deliberately avoids the writer lock (a pipeline waiter
                // may hold it while waiting on this very cell).
                let slot = &self.slots[region.0 as usize];
                slot.generation.invalidate();
                let entries = std::mem::take(&mut slot.meta.lock().entries);
                for &(hash, offset) in &entries {
                    self.index.remove_if_at(hash, region, offset);
                }
                self.quarantine_slot(region.0);
                self.drop_sealing(region.0);
                self.metrics.flush_failures.incr();
                cell.complete(now);
                self.io.completed(IoClass::Flush);
                Err(e)
            }
        }
    }

    /// Reaps one detached flush: waits for its completion, retires its
    /// RAM image, and returns the later of `t` and the completion time.
    /// Callers hold no engine lock.
    fn resolve_ticket(&self, ticket: FlushTicket, t: Nanos) -> Nanos {
        let done = ticket.cell.wait_done();
        self.drop_sealing(ticket.region);
        t.max(done)
    }

    /// Drops a region's detached flush image from the RAM-serve set.
    fn drop_sealing(&self, region: u32) {
        self.sealing_ro.write().retain(|b| b.region.0 != region);
    }

    /// Allocates a region slot (evicting inline if the pool is dry) and
    /// binds a fresh active buffer to it, draining pending reinserts while
    /// keeping `need` bytes free for the caller's object.
    fn bind_fresh_buffer(
        &self,
        w: &mut WriterState,
        need: usize,
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        let region_size = self.backend.region_size();
        let (slot_id, t) = self.acquire_region(w, now)?;
        let slot = &self.slots[slot_id as usize];
        slot.meta.lock().state = RegionState::Active;
        // Re-activation bump: a reader still pinned to the slot's previous
        // life must not trust its location again.
        slot.generation.invalidate();
        // relaxed-ok: recency stamps for approximate LRU scoring.
        slot.last_access
            .store(self.access_seq.load(Ordering::Relaxed), Ordering::Relaxed);
        let buf = Arc::new(RegionBuffer::new(RegionId(slot_id), region_size));
        w.active = Some(ActiveRegion {
            buf: Arc::clone(&buf),
            used: 0,
            entries: Vec::new(),
        });
        *self.active_ro.write() = Some(buf);
        // Drain rescued objects into the fresh buffer, always preserving
        // room for the caller's object (reinsertion is best-effort).
        let pending = std::mem::take(&mut w.pending_reinserts);
        for (key, value, expiry) in pending {
            let size = Self::object_size(&key, &value);
            let fits = match &w.active {
                Some(a) => region_size - a.used >= size + need,
                None => false,
            };
            if !fits {
                continue;
            }
            self.append_locked(w, &key, &value, expiry)?;
        }
        Ok(t)
    }

    /// Appends one object while holding the writer lock (reinsertion
    /// drain): reserve, copy, commit, and index in place. The caller has
    /// verified it fits.
    ///
    /// # Errors
    ///
    /// [`CacheError::Internal`] if no active buffer is bound (an engine
    /// bug, surfaced instead of panicking).
    fn append_locked(
        &self,
        w: &mut WriterState,
        key: &[u8],
        value: &[u8],
        expiry: Nanos,
    ) -> Result<(), CacheError> {
        let hash = hash_key(key);
        let fp = fingerprint(key);
        let size = Self::object_size(key, value);
        let crc = Self::object_crc(key, value);
        let active = w
            .active
            .as_mut()
            .ok_or_else(|| CacheError::Internal("append without an active buffer".into()))?;
        let offset = active.used as u32;
        active.used += size;
        active.entries.push((hash, offset));
        let buf = Arc::clone(&active.buf);
        let region = buf.region;
        // SAFETY: we own the reservation we just granted ourselves.
        unsafe {
            Self::write_object(&buf, offset as usize, key, value, crc);
        }
        buf.commit.commit(size);
        let old = self.index.insert(
            hash,
            IndexEntry {
                region,
                offset,
                key_len: key.len() as u16,
                value_len: value.len() as u32,
                fingerprint: fp,
                expiry,
                accessed: false,
            },
        );
        if let Some(old) = old {
            self.dec_live(old.region);
        }
        Ok(())
    }

    /// # Safety
    ///
    /// The caller must own the (uncommitted) reservation at `offset` for
    /// the full serialized object.
    unsafe fn write_object(buf: &RegionBuffer, offset: usize, key: &[u8], value: &[u8], crc: u32) {
        let mut header = [0u8; OBJECT_HEADER];
        header[0..2].copy_from_slice(&(key.len() as u16).to_le_bytes());
        // Bytes 2..4: reserved flags, zero.
        header[4..8].copy_from_slice(&(value.len() as u32).to_le_bytes());
        header[HEADER_CRC_OFFSET..OBJECT_HEADER].copy_from_slice(&crc.to_le_bytes());
        // SAFETY: the caller owns the reservation covering the whole
        // serialized object (header + key + value); the three writes
        // target disjoint subranges of it.
        unsafe {
            buf.write(offset, &header);
            buf.write(offset + OBJECT_HEADER, key);
            buf.write(offset + OBJECT_HEADER + key.len(), value);
        }
    }

    /// Runs backend maintenance with LRU-derived temperatures and recycles
    /// any regions the backend dropped (hinted GC).
    fn run_maintenance(&self, w: &mut WriterState, now: Nanos) -> Result<(), CacheError> {
        // Rank-based recency: the coldest region scores 0, the hottest 1.
        // (A raw last_access/now ratio saturates near 1 for everything
        // that was touched at all; ranks keep the hint discriminative.)
        // Snapshot the access stamps before sorting: concurrent gets keep
        // bumping `last_access`, and a sort whose key mutates mid-run
        // violates total order (std::sort panics on that).
        let mut order: Vec<(u64, u32)> = (0..self.slots.len() as u32)
            // relaxed-ok: recency snapshot for temperature ranking.
            .map(|r| (self.slots[r as usize].last_access.load(Ordering::Relaxed), r))
            .collect();
        order.sort_unstable();
        let n = order.len().max(1) as f64;
        let mut scores = vec![0.0f64; order.len()];
        for (rank, &(_, r)) in order.iter().enumerate() {
            scores[r as usize] = rank as f64 / n;
        }
        let temperature = move |r: RegionId| scores.get(r.0 as usize).copied().unwrap_or(0.0);
        let outcome = self
            .io
            .run(IoClass::Maintenance, || self.backend.maintenance(now, &temperature))?;
        for region in outcome.dropped_regions {
            let slot = &self.slots[region.0 as usize];
            let entries = {
                let mut meta = slot.meta.lock();
                if meta.state != RegionState::Sealed {
                    continue; // raced with eviction; nothing to recycle
                }
                // Invalidate before the index cleanup, exactly like
                // eviction: the storage is already gone.
                slot.generation.invalidate();
                meta.state = RegionState::Free;
                std::mem::take(&mut meta.entries)
            };
            let mut removed = 0u64;
            for &(hash, offset) in &entries {
                if self.index.remove_if_at(hash, region, offset) {
                    removed += 1;
                }
            }
            slot.live_objects.store(0, Ordering::Relaxed); // relaxed-ok: statistic
            // The slot must not be re-activated under a pinned reader.
            slot.pins.drain();
            w.free.push(region.0);
            w.fifo.retain(|&r| r != region.0);
            self.metrics.gc_dropped_objects.add(removed);
        }
        Ok(())
    }

    /// Inserts a key/value pair with no expiry.
    ///
    /// Returns the operation's completion time.
    ///
    /// # Errors
    ///
    /// [`CacheError::ObjectTooLarge`] when the object cannot fit one
    /// region; [`CacheError::KeyTooLarge`] beyond 64 KiB keys; backend I/O
    /// errors otherwise.
    pub fn set(&self, key: &[u8], value: &[u8], now: Nanos) -> Result<Nanos, CacheError> {
        self.set_with_ttl(key, value, None, now)
    }

    /// Inserts a key/value pair that expires `ttl` after `now` (CacheLib
    /// items carry TTLs; expired entries are treated as misses and
    /// reclaimed lazily on lookup).
    ///
    /// # Errors
    ///
    /// As [`LogCache::set`].
    pub fn set_with_ttl(
        &self,
        key: &[u8],
        value: &[u8],
        ttl: Option<Nanos>,
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        self.observe_clock(now);
        if key.len() > u16::MAX as usize {
            return Err(CacheError::KeyTooLarge { len: key.len() });
        }
        let size = Self::object_size(key, value);
        let region_size = self.backend.region_size();
        if size > region_size {
            return Err(CacheError::ObjectTooLarge { size, region_size });
        }
        if !self.admit() {
            self.metrics.rejected.incr();
            return Ok(now + self.config.insert_cpu);
        }
        let hash = hash_key(key);
        let fp = fingerprint(key);
        let expiry = ttl.map_or(Nanos::MAX, |ttl| now + ttl);

        // Write-back DRAM (DESIGN.md §10): absorb the insert in the DRAM
        // tier; only entries *evicted* from it are demoted to the flash
        // log, so a hot key overwritten in place never reaches the device.
        if self.config.dram_write_back {
            // The two vectors are sized together, so both or neither.
            if let (Some(shard), Some(epoch)) = (self.dram_shard(hash), self.dram_epoch(hash)) {
                let (absorbed, demote_epoch) = {
                    let mut tier = shard.lock();
                    let absorbed = tier.insert(
                        hash,
                        DramEntry {
                            key: Bytes::copy_from_slice(key),
                            value: Bytes::copy_from_slice(value),
                            expiry,
                            accessed: false,
                        },
                    );
                    if absorbed.is_none() {
                        // Too large for the tier: the write-through below
                        // will publish the new version to flash. A resident
                        // older copy must not stay behind to shadow it —
                        // DRAM is authoritative in this mode.
                        tier.remove(hash);
                    }
                    // This set supersedes any in-flight demotion of an
                    // older version of the key: bump the shard's epoch
                    // (under the lock, *before* we touch the index) so the
                    // demoter's post-publish check sees it. Our own
                    // demotions sample *after* the bump, so a demotion only
                    // ever undoes itself on someone else's supersession.
                    epoch.invalidate();
                    (absorbed, epoch.sample())
                };
                if let Some(evicted) = absorbed {
                    // The DRAM copy is now the authoritative version; drop
                    // any flash entry up front so losing the DRAM tier can
                    // only surface as a miss, never as an older flash copy
                    // resurfacing behind a newer value.
                    if let Some(old) = self.index.remove(hash, fp) {
                        self.dec_live(old.region);
                    }
                    let mut t = now.max(self.stall_deadline()) + self.config.insert_cpu;
                    for (demoted_hash, entry) in evicted {
                        t = self.demote(demoted_hash, entry, demote_epoch, t)?;
                    }
                    self.metrics.sets.incr();
                    self.metrics.record_set(t - now);
                    return Ok(t);
                }
                // Larger than a whole DRAM shard: write through to flash.
            }
        }

        let crc = Self::object_crc(key, value);
        let (t, _, _) = self.log_write(key, value, expiry, hash, fp, crc, now)?;
        self.metrics.sets.incr();
        self.metrics.record_set(t - now);
        Ok(t)
    }

    /// Writes a DRAM-evicted entry into the flash log (write-back mode's
    /// demotion pipeline). Entries that expired while resident — or that
    /// could never fit a region — are dropped instead of persisted:
    /// eviction is always legal for a cache.
    ///
    /// `epoch_sampled` is the shard's supersession epoch as sampled when
    /// the entry left DRAM (under the shard lock, after the evicting
    /// set's own bump). If a concurrent set or delete bumps the epoch
    /// before the index publish lands, the demoted version may be stale
    /// — it is un-published rather than left to shadow the newer value.
    fn demote(
        &self,
        hash: u64,
        entry: DramEntry,
        epoch_sampled: u64,
        now: Nanos,
    ) -> Result<Nanos, CacheError> {
        if entry.expiry <= now {
            return Ok(now);
        }
        if !entry.accessed {
            // Reject-first admission (CacheLib): an entry never looked up
            // during its whole DRAM residency is a one-hit-wonder; burning
            // a flash write (and later flash reads) on it costs more than
            // the rare miss it would save.
            return Ok(now);
        }
        if Self::object_size(&entry.key, &entry.value) > self.backend.region_size() {
            return Ok(now);
        }
        let fp = fingerprint(&entry.key);
        let crc = Self::object_crc(&entry.key, &entry.value);
        self.metrics.dram_demotions.incr();
        let (t, region, offset) =
            self.log_write(&entry.key, &entry.value, entry.expiry, hash, fp, crc, now)?;
        // The demote/invalidate crossing: a set or delete that touched the
        // shard between this entry's eviction and the publish above has
        // already removed the key's flash entry — re-publishing behind it
        // would resurrect a superseded (or deleted) version. The writers'
        // bump-before-index-remove and our sample-then-recheck discipline
        // guarantee one side sees the other, whichever publishes first.
        // (Per-shard granularity: an unrelated key's set can undo a fresh
        // demotion — that is an eviction, which a cache may always take.)
        if let Some(epoch) = self.dram_epoch(hash) {
            if epoch.changed_since(epoch_sampled) && self.index.remove_if_at(hash, region, offset)
            {
                self.metrics.dram_demote_undos.incr();
                self.on_entry_invalidated(hash, region);
            }
        }
        Ok(t)
    }

    /// Appends one object to the flash log and publishes its index entry:
    /// Phase 1 reserves a range under the writer lock (sealing and
    /// flushing full buffers as needed), Phase 2 copies the payload with
    /// no lock held, Phase 3 publishes the index (and, in mirror mode,
    /// DRAM) entry. Common to write-through sets and write-back
    /// demotions. Returns the completion time plus the log location the
    /// entry was published at, so a demotion can un-publish itself
    /// (location-checked) if its version was superseded mid-flight.
    fn log_write(
        &self,
        key: &[u8],
        value: &[u8],
        expiry: Nanos,
        hash: u64,
        fp: u32,
        crc: u32,
        now: Nanos,
    ) -> Result<(Nanos, RegionId, u32), CacheError> {
        let size = Self::object_size(key, value);
        let region_size = self.backend.region_size();

        // Phase 1, under the writer lock: reserve an append range. Any
        // eviction needed to make room also runs here — writers pay the
        // reclamation cost when the clean pool is dry (backpressure). A
        // seal, however, only *detaches* the full buffer under the lock;
        // its device write is submitted after the lock is dropped, so
        // other writers fill the next buffer while the flush programs.
        let mut w = self.writer.lock();
        let mut t = now.max(self.stall_deadline()) + self.config.insert_cpu;
        loop {
            if let Some(active) = &w.active {
                if region_size - active.used >= size {
                    break;
                }
            }
            let (job, tickets) = self.seal_detach(&mut w);
            // ticket-ok: `seal_detach` returns no tickets when there is no
            // job — with no active buffer there was nothing sealed, hence
            // nothing in flight to resolve on this path.
            let Some(job) = job else {
                // No active buffer at all: bind a fresh one and re-check.
                // lock-ok: allocating the replacement buffer must happen
                // under the writer lock (it installs `w.active`); eviction
                // backpressure on a dry pool is intentional.
                t = self.bind_fresh_buffer(&mut w, size, t)?;
                continue;
            };
            drop(w);
            for ticket in tickets {
                t = self.resolve_ticket(ticket, t);
            }
            match self.submit_flush(job, t) {
                // Pipelined: the writer does not wait for the flush; the
                // completion is reaped from the ticket later.
                Ok(_done) => {}
                // Permanent flush failure (e.g. the region's zone fell
                // read-only mid-life): `submit_flush` already dropped the
                // buffered entries and quarantined the slot. A cache
                // insert must not fail because one region died — reroute
                // this write into a fresh region and keep serving.
                Err(CacheError::Io(_)) => {
                    self.metrics.write_reroutes.incr();
                }
                Err(other) => return Err(other),
            }
            w = self.writer.lock();
        }
        // relaxed-ok: access sequence is a recency counter, not a publish.
        let seq = self.access_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let active = w
            .active
            .as_mut()
            .ok_or_else(|| CacheError::Internal("active buffer vanished after ensure".into()))?;
        let offset = active.used as u32;
        active.used += size;
        active.entries.push((hash, offset));
        let buf = Arc::clone(&active.buf);
        let region = buf.region;
        let slot = &self.slots[region.0 as usize];
        slot.last_access.store(seq, Ordering::Relaxed); // relaxed-ok: recency stamp, approximate by design
        let reserved_gen = slot.generation.sample();
        w.sets_since_maintenance += 1;
        if w.sets_since_maintenance >= self.config.maintenance_interval_sets {
            w.sets_since_maintenance = 0;
            self.run_maintenance(&mut w, t)?;
        }
        drop(w);

        // Phase 2, no locks: copy the payload into the reserved range and
        // publish it.
        // SAFETY: the reservation above is exclusively ours.
        unsafe {
            Self::write_object(&buf, offset as usize, key, value, crc);
        }
        buf.commit.commit(size);

        // Phase 3: index under one shard lock, DRAM under one shard lock.
        let old = self.index.insert(
            hash,
            IndexEntry {
                region,
                offset,
                key_len: key.len() as u16,
                value_len: value.len() as u32,
                fingerprint: fp,
                expiry,
                accessed: false,
            },
        );
        if let Some(old) = old {
            self.dec_live(old.region);
        }
        if slot.generation.changed_since(reserved_gen) {
            // The region was sealed *and* evicted between our reservation
            // and the index insert (extreme churn): the entry points at
            // reclaimed storage. Undo it — the object counts as evicted
            // immediately, which a cache is always allowed to do.
            self.index.remove_if_at(hash, region, offset);
        } else if !self.config.dram_write_back {
            // DRAM tier mirrors the newest version (mirror mode only —
            // write-back demotions must not bounce back into DRAM).
            if let Some(shard) = self.dram_shard(hash) {
                shard.lock().insert(
                    hash,
                    DramEntry {
                        key: Bytes::copy_from_slice(key),
                        value: Bytes::copy_from_slice(value),
                        expiry,
                        accessed: false,
                    },
                );
            }
        }
        Ok((t, region, offset))
    }

    /// Looks up a key.
    ///
    /// Returns the value (if cached) and the completion time.
    ///
    /// # Errors
    ///
    /// Backend I/O failures (never "miss" — a miss is `Ok(None)`).
    pub fn get(&self, key: &[u8], now: Nanos) -> Result<(Option<Bytes>, Nanos), CacheError> {
        self.observe_clock(now);
        let hash = hash_key(key);
        let fp = fingerprint(key);
        self.metrics.gets.incr();
        let mut t = now + self.config.lookup_cpu;

        let attempts = self.config.read_retry_attempts.max(1);
        for _ in 0..attempts {
            match self.try_get(key, hash, fp, now, &mut t)? {
                TryGet::Hit(value) => {
                    self.index.touch(hash, fp);
                    self.metrics.hits.incr();
                    self.metrics.record_get(t - now);
                    return Ok((Some(value), t));
                }
                TryGet::Miss => {
                    self.metrics.record_get(t - now);
                    return Ok((None, t));
                }
                TryGet::Stale => {
                    self.metrics.stale_reads.incr();
                }
            }
        }
        // The entry kept moving under eviction churn through the whole
        // retry budget: it is as good as evicted. Serve a miss.
        self.metrics.record_get(t - now);
        Ok((None, t))
    }

    /// One lookup attempt. `Stale` means an unlocked read raced a
    /// seal/eviction and the caller should retry from the index.
    fn try_get(
        &self,
        key: &[u8],
        hash: u64,
        fp: u32,
        now: Nanos,
        t: &mut Nanos,
    ) -> Result<TryGet, CacheError> {
        // Write-back mode: the DRAM tier is authoritative and write-back
        // entries have no index entry at all, so DRAM is consulted before
        // the index (DESIGN.md §10). `DramCache::get` expiry-checks and
        // rejects hash collisions itself.
        if self.config.dram_write_back {
            if let Some(shard) = self.dram_shard(hash) {
                if let Some(v) = shard.lock().get(hash, key, now) {
                    return Ok(TryGet::Hit(v));
                }
            }
        }
        let entry = match self.index.lookup(hash, fp) {
            Some(e) => e,
            None => return Ok(TryGet::Miss),
        };
        if entry.expiry <= now {
            // Lazy TTL reclamation: drop the entry, report a miss. The
            // removal is location-checked so a racing re-insert of the
            // same key is never clobbered.
            if self.index.remove_if_at(hash, entry.region, entry.offset) {
                self.on_entry_invalidated(hash, entry.region);
            }
            self.metrics.expired.incr();
            return Ok(TryGet::Miss);
        }
        // Index-wide stall from oversized eviction cleanup.
        *t = (*t).max(self.stall_deadline() + self.config.lookup_cpu);
        // relaxed-ok: access sequence is a recency counter, not a publish.
        let seq = self.access_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &self.slots[entry.region.0 as usize];
        slot.last_access.store(seq, Ordering::Relaxed); // relaxed-ok: recency stamp

        // DRAM tier first (mirror mode; write-back already checked it
        // above, before the index).
        if !self.config.dram_write_back {
            if let Some(shard) = self.dram_shard(hash) {
                if let Some(v) = shard.lock().get(hash, key, now) {
                    // A DRAM hit is still a reference to the flash copy.
                    return Ok(TryGet::Hit(v));
                }
            }
        }

        // Serve from the active buffer without touching flash.
        let active = self.active_ro.read().clone();
        if let Some(buf) = &active {
            if buf.region == entry.region {
                // Re-confirm the location against the buffer we hold: the
                // entry cannot name this buffer's region unless it was
                // inserted for this incarnation (eviction removes a
                // region's entries before the slot can be reused).
                if self.index.get_at(hash, entry.region, entry.offset).is_none() {
                    return Ok(TryGet::Stale);
                }
                let start = entry.offset as usize + OBJECT_HEADER + entry.key_len as usize;
                // SAFETY: an indexed object's bytes are committed before
                // the entry is published.
                let value = unsafe { buf.slice(start, entry.value_len as usize) };
                return Ok(TryGet::Hit(Bytes::copy_from_slice(value)));
            }
        }

        // Serve from a detached (sealing) flush image. Mandatory while the
        // flush is in flight — the data is not yet guaranteed on flash —
        // and kept until the ticket resolves, which holds the most
        // recently sealed (hottest) region at DRAM latency.
        let sealing = self
            .sealing_ro
            .read()
            .iter()
            .find(|b| b.region == entry.region)
            .cloned();
        if let Some(buf) = &sealing {
            if self.index.get_at(hash, entry.region, entry.offset).is_none() {
                return Ok(TryGet::Stale);
            }
            let start = entry.offset as usize + OBJECT_HEADER + entry.key_len as usize;
            // SAFETY: the image was quiesced at detach, so every byte is
            // committed and immutable for the buffer's remaining lifetime.
            let value = unsafe { buf.slice(start, entry.value_len as usize) };
            return Ok(TryGet::Hit(Bytes::copy_from_slice(value)));
        }

        // Flash path — entirely outside any engine lock. Pin the region
        // so eviction cannot reclaim its storage mid-read, then confirm
        // nothing moved before trusting the location.
        let _pin = slot.pins.pin();
        let gen = slot.generation.sample();
        if self.index.get_at(hash, entry.region, entry.offset).is_none() {
            return Ok(TryGet::Stale);
        }
        if let Some(buf) = self.active_ro.read().as_ref() {
            if buf.region == entry.region {
                // The slot was recycled into the active buffer between the
                // first check and the pin; retry through the buffer path.
                return Ok(TryGet::Stale);
            }
        }
        if self.sealing_ro.read().iter().any(|b| b.region == entry.region) {
            // The slot was recycled *and re-sealed* between the first
            // check and the pin: its new image may not be on flash yet.
            // Retry — the next attempt serves it from the sealing buffer.
            return Ok(TryGet::Stale);
        }
        let stale = |e: Option<CacheError>| {
            if slot.generation.changed_since(gen) {
                Ok(TryGet::Stale)
            } else {
                match e {
                    Some(err) => Err(err),
                    None => Ok(TryGet::Stale),
                }
            }
        };
        if self.config.verify_keys {
            // Read header + key + value; verify identity + checksum.
            let len = OBJECT_HEADER + entry.key_len as usize + entry.value_len as usize;
            let mut obj = vec![0u8; len];
            match self.io.run(IoClass::Read, || {
                self.retry_io(*t, |t| {
                    self.backend.read(entry.region, entry.offset as usize, &mut obj, t)
                })
            }) {
                Ok(done) => *t = done,
                // A read error on a region that was invalidated mid-read
                // (e.g. a reset zone) is staleness, not device failure.
                Err(e) => return stale(Some(e)),
            }
            let stored_key = &obj[OBJECT_HEADER..OBJECT_HEADER + entry.key_len as usize];
            // `obj` always holds at least a header here, but corruption
            // handling must not rely on that — a malformed length is
            // treated as a failed checksum, not a panic.
            let stored_crc = Self::header_crc(&obj);
            if stored_crc != Some(crc32(&obj[OBJECT_HEADER..])) {
                if slot.generation.changed_since(gen) {
                    return Ok(TryGet::Stale);
                }
                // Bit rot or a torn flush: the entry is poison.
                // Invalidate it and serve a miss — never bad bytes.
                if self.index.remove_if_at(hash, entry.region, entry.offset) {
                    self.on_entry_invalidated(hash, entry.region);
                }
                self.metrics.corrupt_reads.incr();
                return Ok(TryGet::Miss);
            }
            if stored_key != key {
                if slot.generation.changed_since(gen) {
                    return Ok(TryGet::Stale);
                }
                // Fingerprint collision with a different key.
                self.index.remove_if_at(hash, entry.region, entry.offset);
                return Ok(TryGet::Miss);
            }
            Ok(TryGet::Hit(Bytes::copy_from_slice(
                &obj[OBJECT_HEADER + entry.key_len as usize..],
            )))
        } else {
            // Sparse-store mode: payloads are not retained, so neither key
            // nor checksum can be verified — the generation revalidation
            // is the only guard against serving a reclaimed location.
            let start = entry.offset as usize + OBJECT_HEADER + entry.key_len as usize;
            let mut value = vec![0u8; entry.value_len as usize];
            match self.io.run(IoClass::Read, || {
                self.retry_io(*t, |t| self.backend.read(entry.region, start, &mut value, t))
            }) {
                Ok(done) => *t = done,
                Err(e) => return stale(Some(e)),
            }
            if slot.generation.changed_since(gen) {
                return Ok(TryGet::Stale);
            }
            Ok(TryGet::Hit(Bytes::from(value)))
        }
    }

    /// Deletes a key. Returns whether it existed, and the completion time.
    ///
    /// # Errors
    ///
    /// None today — deletion is pure DRAM-state invalidation (the flash
    /// copy dies with its region). The typed `Result` is the contract for
    /// callers so a future trim-on-delete path can surface backend
    /// failures instead of swallowing them.
    pub fn delete(&self, key: &[u8], now: Nanos) -> Result<(bool, Nanos), CacheError> {
        self.observe_clock(now);
        let hash = hash_key(key);
        let fp = fingerprint(key);
        let t = now + self.config.lookup_cpu;
        // The DRAM tier is purged unconditionally: in write-back mode the
        // resident copy may be the *only* copy, with no index entry to
        // lead here (mirror mode reaches the same state — no stale DRAM
        // entry may outlive a delete).
        let dram_removed = match self.dram_shard(hash) {
            Some(shard) => {
                let mut tier = shard.lock();
                let removed = tier.remove(hash);
                // Bump the shard's supersession epoch even when the key is
                // absent: in write-back mode an in-flight demotion may hold
                // the key's only copy (already evicted from the shard), and
                // the bump — ordered under the lock, before the index
                // remove below — is what keeps it from re-publishing the
                // deleted key behind us.
                if let Some(epoch) = self.dram_epoch(hash) {
                    epoch.invalidate();
                }
                removed
            }
            None => false,
        };
        let removed = self.index.remove(hash, fp);
        if let Some(entry) = &removed {
            self.dec_live(entry.region);
        }
        let existed = removed.is_some() || dram_removed;
        if existed {
            self.metrics.deletes.incr();
        }
        Ok((existed, t))
    }

    /// Seals and flushes the active buffer even if partially full, then
    /// drains the whole flush pipeline: on return every sealed region has
    /// landed on the backend (a true barrier) and the returned time
    /// covers the slowest in-flight flush.
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    pub fn flush(&self, now: Nanos) -> Result<Nanos, CacheError> {
        self.observe_clock(now);
        let mut w = self.writer.lock();
        let (job, mut tickets) = self.seal_detach(&mut w);
        // Barrier: drain everything, including the ticket of the job
        // detached above (its cell is filled by the submit below, before
        // any resolve waits on it).
        tickets.extend(w.in_flight.drain(..));
        drop(w);
        let submit = match job {
            Some(job) => self.submit_flush(job, now).map(Some),
            None => Ok(None),
        };
        let mut t = now;
        for ticket in tickets {
            t = self.resolve_ticket(ticket, t);
        }
        // Error only after every cell is resolved: waiters never hang on
        // a failed submission, and the barrier semantics still hold.
        if let Some(done) = submit? {
            t = t.max(done);
        }
        Ok(t)
    }

    /// Resolves every in-flight flush ticket without sealing the active
    /// buffer. Unlike [`LogCache::flush`] this is not a durability
    /// barrier — the partially-filled active region keeps accepting
    /// writes. Benchmarks call it at the end of warmup so the measured
    /// phase starts with an idle flush pipeline instead of inheriting a
    /// half-finished program window.
    pub fn drain_flushes(&self, now: Nanos) -> Nanos {
        self.observe_clock(now);
        let tickets: Vec<_> = {
            let mut w = self.writer.lock();
            w.in_flight.drain(..).collect()
        };
        let mut t = now;
        for ticket in tickets {
            t = self.resolve_ticket(ticket, t);
        }
        t
    }

    /// Runs backend maintenance immediately (tests and shutdown paths).
    ///
    /// # Errors
    ///
    /// Backend I/O failures.
    pub fn force_maintenance(&self, now: Nanos) -> Result<(), CacheError> {
        let mut w = self.writer.lock();
        // lock-ok: the explicit stop-the-world knob — callers ask for
        // maintenance to displace foreground writes.
        self.run_maintenance(&mut w, now)
    }

    pub(crate) fn index(&self) -> &Index {
        &self.index
    }

    pub(crate) fn metrics_internal(&self) -> &CacheMetrics {
        &self.metrics
    }

    /// The engine's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Internal: region metadata dump for recovery snapshots.
    pub(crate) fn region_dump(&self) -> Vec<RegionDumpEntry> {
        // Hold the writer lock so no seal/eviction mutates region tables
        // mid-dump.
        let _w = self.writer.lock();
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let meta = s.meta.lock();
                (
                    i as u32,
                    meta.entries.clone(),
                    s.live_objects.load(Ordering::Relaxed), // relaxed-ok: statistic
                    s.last_access.load(Ordering::Relaxed),  // relaxed-ok: statistic
                    meta.state == RegionState::Sealed,
                    meta.seal_seq,
                )
            })
            .collect()
    }

    /// Internal: restore region metadata from a recovery snapshot. Sealed
    /// regions re-enter the FIFO in their recorded seal order, so a
    /// restarted cache evicts in exactly the pre-shutdown order.
    pub(crate) fn region_restore(&self, regions: Vec<RegionDumpEntry>) -> Result<(), CacheError> {
        let mut w = self.writer.lock();
        if regions.len() != self.slots.len() {
            return Err(CacheError::BadSnapshot(format!(
                "snapshot has {} regions, backend has {}",
                regions.len(),
                self.slots.len()
            )));
        }
        w.free.clear();
        w.fifo.clear();
        let mut max_seq = 0;
        let mut sealed: Vec<(u64, u32)> = Vec::new();
        for (i, entries, live, last_access, is_sealed, seal_seq) in regions {
            // A zone that degraded while the cache was down must not
            // re-enter service: a dead region serves nothing, and a
            // read-only region can keep serving sealed data but never
            // host a fresh write. Quarantine instead of freeing, and drop
            // any restored index entries a snapshot may still list.
            // lock-ok: recovery runs single-threaded before the cache is
            // open; the writer lock is held for invariant convenience,
            // nobody contends it.
            let health = self.backend.region_health(RegionId(i));
            let unusable = health == RegionHealth::Dead
                || (health == RegionHealth::Degraded && !is_sealed);
            if unusable {
                for &(hash, offset) in &entries {
                    if self.index.remove_if_at(hash, RegionId(i), offset) {
                        self.on_entry_invalidated(hash, RegionId(i));
                    }
                }
                // lock-ok: same single-threaded recovery scan as above.
                self.quarantine(&mut w, i);
                continue;
            }
            let slot = &self.slots[i as usize];
            {
                let mut meta = slot.meta.lock();
                meta.entries = entries;
                meta.seal_seq = seal_seq;
                meta.state = if is_sealed {
                    RegionState::Sealed
                } else {
                    RegionState::Free
                };
            }
            // relaxed-ok: restore runs under the writer lock, single writer.
            slot.live_objects.store(live, Ordering::Relaxed);
            slot.last_access.store(last_access, Ordering::Relaxed); // relaxed-ok: see above
            max_seq = max_seq.max(last_access);
            if is_sealed {
                sealed.push((seal_seq, i));
            } else {
                w.free.push(i);
            }
        }
        sealed.sort_unstable();
        w.next_seal_seq = sealed.last().map_or(0, |&(s, _)| s + 1);
        for (_, i) in sealed {
            w.fifo.push_back(i);
        }
        self.access_seq.store(max_seq, Ordering::Relaxed); // relaxed-ok: recency counter
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BlockBackend;
    use sim::{RamDisk, BLOCK_SIZE};

    /// 16 regions of 16 KiB on a RAM disk.
    fn cache() -> LogCache {
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        LogCache::new(backend, CacheConfig::small_test()).unwrap()
    }

    #[test]
    fn set_get_round_trip_from_buffer_and_flash() {
        let c = cache();
        let t = c.set(b"alpha", b"one", Nanos::ZERO).unwrap();
        // Still in the active buffer.
        let (v, t) = c.get(b"alpha", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"one"[..]));
        // Force it to flash and read again.
        let t = c.flush(t).unwrap();
        let (v, _) = c.get(b"alpha", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"one"[..]));
        assert_eq!(c.metrics().hits, 2);
    }

    #[test]
    fn miss_returns_none() {
        let c = cache();
        let (v, _) = c.get(b"nope", Nanos::ZERO).unwrap();
        assert!(v.is_none());
        assert_eq!(c.metrics().gets, 1);
        assert_eq!(c.metrics().hits, 0);
    }

    #[test]
    fn overwrite_returns_latest() {
        let c = cache();
        let t = c.set(b"k", b"v1", Nanos::ZERO).unwrap();
        let t = c.set(b"k", b"v2", t).unwrap();
        let (v, _) = c.get(b"k", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"v2"[..]));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn delete_removes() {
        let c = cache();
        let t = c.set(b"k", b"v", Nanos::ZERO).unwrap();
        let (existed, t) = c.delete(b"k", t).unwrap();
        assert!(existed);
        let (v, _) = c.get(b"k", t).unwrap();
        assert!(v.is_none());
        let (existed, _) = c.delete(b"k", t).unwrap();
        assert!(!existed);
    }

    #[test]
    fn object_too_large_rejected() {
        let c = cache();
        let huge = vec![0u8; 5 * BLOCK_SIZE];
        assert!(matches!(
            c.set(b"k", &huge, Nanos::ZERO),
            Err(CacheError::ObjectTooLarge { .. })
        ));
    }

    #[test]
    fn eviction_kicks_in_when_regions_exhausted() {
        let c = cache();
        // 16 regions of 16 KiB; write ~2x the capacity in 1 KiB objects.
        let value = vec![7u8; 1024 - 32];
        let mut t = Nanos::ZERO;
        let total = 2 * 16 * 16; // objects ≈ 2x capacity
        for i in 0..total {
            let key = format!("key-{i:06}");
            t = c.set(key.as_bytes(), &value, t).unwrap();
        }
        let m = c.metrics();
        assert!(m.evicted_regions > 0, "no eviction: {m:?}");
        assert!(m.evicted_objects > 0);
        assert!(m.inline_evictions > 0, "foreground evictions not counted");
        // Recently inserted keys must be present; the oldest must be gone.
        let last = format!("key-{:06}", total - 1);
        let (v, _) = c.get(last.as_bytes(), t).unwrap();
        assert!(v.is_some(), "most recent key evicted");
        let (v, _) = c.get(b"key-000000", t).unwrap();
        assert!(v.is_none(), "oldest key survived 2x-capacity churn");
    }

    #[test]
    fn lru_eviction_prefers_cold_regions() {
        let c = cache();
        let value = vec![1u8; 3 * 1024];
        let mut t = Nanos::ZERO;
        // Fill all 16 regions (4 objects each).
        for i in 0..64 {
            let key = format!("k{i:04}");
            t = c.set(key.as_bytes(), &value, t).unwrap();
        }
        t = c.flush(t).unwrap();
        // Keep early keys hot.
        for i in 0..8 {
            let key = format!("k{i:04}");
            let (v, t2) = c.get(key.as_bytes(), t).unwrap();
            assert!(v.is_some());
            t = t2;
        }
        // Insert more to force evictions.
        for i in 64..96 {
            let key = format!("k{i:04}");
            t = c.set(key.as_bytes(), &value, t).unwrap();
        }
        // Hot early keys should have survived longer than cold middle keys.
        let (hot, t2) = c.get(b"k0000", t).unwrap();
        let (cold, _) = c.get(b"k0020", t2).unwrap();
        assert!(hot.is_some() || cold.is_none(), "LRU inverted");
    }

    #[test]
    fn admission_rejects_probabilistically() {
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        let config = CacheConfig {
            admission: Admission::Random { probability: 0.0 },
            ..CacheConfig::small_test()
        };
        let c = LogCache::new(backend, config).unwrap();
        let t = c.set(b"k", b"v", Nanos::ZERO).unwrap();
        let (v, _) = c.get(b"k", t).unwrap();
        assert!(v.is_none());
        assert_eq!(c.metrics().rejected, 1);
    }

    #[test]
    fn dram_tier_serves_hot_objects() {
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        let config = CacheConfig {
            dram_bytes: 64 * 1024,
            ..CacheConfig::small_test()
        };
        let c = LogCache::new(backend, config).unwrap();
        let t = c.set(b"k", b"v", Nanos::ZERO).unwrap();
        let t = c.flush(t).unwrap();
        let (v, t_done) = c.get(b"k", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"v"[..]));
        // DRAM hit: no device latency beyond CPU cost.
        assert_eq!(t_done - t, c.config().lookup_cpu);
    }

    /// Write-back rig: one DRAM shard sized for exactly two 31-byte
    /// entries (1-byte key + 30-byte value), so the third insert evicts,
    /// plus a handle on the backend to observe flash traffic.
    fn write_back_cache(dram_bytes: usize) -> (LogCache, Arc<BlockBackend>) {
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        let config = CacheConfig {
            dram_bytes,
            dram_shards: 1,
            dram_write_back: true,
            ..CacheConfig::small_test()
        };
        let c = LogCache::new(Arc::clone(&backend) as Arc<dyn RegionBackend>, config).unwrap();
        (c, backend)
    }

    #[test]
    fn write_back_absorbs_sets_without_flash_writes() {
        let (c, backend) = write_back_cache(64 * 1024);
        let mut t = Nanos::ZERO;
        for i in 0..50u32 {
            t = c.set(format!("wb{i:02}").as_bytes(), &[i as u8; 100], t).unwrap();
        }
        t = c.flush(t).unwrap();
        assert_eq!(backend.host_bytes_written(), 0, "sets must be absorbed in DRAM");
        assert_eq!(c.len(), 0, "absorbed keys must have no flash index entry");
        assert_eq!(c.metrics().dram_demotions, 0);
        let (v, _) = c.get(b"wb07", t).unwrap();
        assert_eq!(v.as_deref(), Some(&[7u8; 100][..]));
    }

    #[test]
    fn write_back_demotes_accessed_and_drops_one_hit_wonders() {
        let (c, _backend) = write_back_cache(62);
        let val = |b: u8| vec![b; 30];
        let mut t = Nanos::ZERO;
        t = c.set(b"a", &val(1), t).unwrap();
        t = c.set(b"b", &val(2), t).unwrap();
        // Touch `a`: it is now both accessed and most-recent.
        let (v, t2) = c.get(b"a", t).unwrap();
        assert_eq!(v.as_deref(), Some(&val(1)[..]));
        t = t2;
        // Evicts `b` — never accessed, so reject-first drops it cold.
        t = c.set(b"c", &val(3), t).unwrap();
        assert_eq!(c.metrics().dram_demotions, 0, "one-hit-wonder must not demote");
        // Evicts `a` — accessed, so it demotes into the flash log.
        t = c.set(b"d", &val(4), t).unwrap();
        assert_eq!(c.metrics().dram_demotions, 1, "accessed evictee must demote");
        let (v, t3) = c.get(b"a", t).unwrap();
        assert_eq!(v.as_deref(), Some(&val(1)[..]), "demoted entry must stay readable");
        t = t3;
        let (v, _) = c.get(b"b", t).unwrap();
        assert!(v.is_none(), "dropped one-hit-wonder must miss");
    }

    #[test]
    fn write_back_overwrite_never_resurfaces_old_flash_copy() {
        let (c, _backend) = write_back_cache(62);
        let val = |b: u8| vec![b; 30];
        let mut t = Nanos::ZERO;
        t = c.set(b"a", &val(1), t).unwrap();
        let (_, t2) = c.get(b"a", t).unwrap(); // mark accessed
        t = t2;
        // Push `a` (v1) out to flash, then overwrite it in DRAM with v2.
        t = c.set(b"b", &val(2), t).unwrap();
        t = c.set(b"c", &val(3), t).unwrap();
        assert_eq!(c.metrics().dram_demotions, 1);
        t = c.set(b"a", &val(9), t).unwrap();
        let (v, t2) = c.get(b"a", t).unwrap();
        assert_eq!(v.as_deref(), Some(&val(9)[..]), "resident copy is authoritative");
        t = t2;
        // The stale flash copy of v1 must be gone, not shadowed: after a
        // delete nothing may resurface.
        let (existed, t2) = c.delete(b"a", t).unwrap();
        assert!(existed);
        let (v, _) = c.get(b"a", t2).unwrap();
        assert!(v.is_none(), "old flash version resurfaced after delete");
    }

    #[test]
    fn write_back_write_through_purges_stale_resident_copy() {
        // A value too large for the whole DRAM tier writes through to
        // flash; an older *resident* version of the same key must not
        // stay behind to shadow it (DRAM is authoritative in this mode).
        let (c, _backend) = write_back_cache(62);
        let mut t = Nanos::ZERO;
        t = c.set(b"a", &[1u8; 30], t).unwrap();
        t = c.set(b"a", &[9u8; 200], t).unwrap();
        let (v, _) = c.get(b"a", t).unwrap();
        assert_eq!(
            v.as_deref(),
            Some(&[9u8; 200][..]),
            "stale DRAM copy shadowed the written-through version"
        );
    }

    #[test]
    fn write_back_delete_removes_dram_only_entry() {
        let (c, _backend) = write_back_cache(64 * 1024);
        let t = c.set(b"k", b"v", Nanos::ZERO).unwrap();
        let (existed, t) = c.delete(b"k", t).unwrap();
        assert!(existed, "DRAM-resident entry must count as existing");
        let (v, _) = c.get(b"k", t).unwrap();
        assert!(v.is_none());
    }

    #[test]
    fn write_back_ttl_expires_in_dram() {
        let (c, _backend) = write_back_cache(64 * 1024);
        let t = c
            .set_with_ttl(b"k", b"v", Some(Nanos::from_millis(5)), Nanos::ZERO)
            .unwrap();
        let (v, t) = c.get(b"k", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"v"[..]));
        let late = t + Nanos::from_millis(10);
        let (v, _) = c.get(b"k", late).unwrap();
        assert!(v.is_none(), "expired DRAM-resident entry served");
    }

    #[test]
    fn write_back_expired_evictee_is_not_demoted() {
        let (c, _backend) = write_back_cache(62);
        let val = |b: u8| vec![b; 30];
        let mut t = Nanos::ZERO;
        t = c
            .set_with_ttl(b"a", &val(1), Some(Nanos::from_millis(1)), t)
            .unwrap();
        let (_, t2) = c.get(b"a", t).unwrap(); // accessed — would demote if alive
        t = t2 + Nanos::from_millis(5);
        t = c.set(b"b", &val(2), t).unwrap();
        c.set(b"c", &val(3), t).unwrap();
        assert_eq!(
            c.metrics().dram_demotions,
            0,
            "an entry that expired while resident must not reach flash"
        );
    }

    #[test]
    fn too_small_backend_rejected() {
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(8)),
            4 * BLOCK_SIZE,
        ));
        assert!(matches!(
            LogCache::new(backend, CacheConfig::small_test()),
            Err(CacheError::BackendTooSmall)
        ));
    }

    #[test]
    fn flush_pipeline_stalls_when_saturated() {
        // One in-flight buffer: the second seal must wait for the first.
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        let config = CacheConfig {
            in_memory_buffers: 1,
            ..CacheConfig::small_test()
        };
        let c = LogCache::new(backend, config).unwrap();
        let value = vec![1u8; 15 * 1024];
        let t1 = c.set(b"a", &value, Nanos::ZERO).unwrap();
        // Second large set seals buffer 1 (flush in flight) and the third
        // seals buffer 2, which must wait for flush 1.
        let t2 = c.set(b"b", &value, t1).unwrap();
        let t3 = c.set(b"c", &value, t2).unwrap();
        assert!(t3 - t2 >= t2 - t1, "no pipeline stall observed");
    }

    #[test]
    fn ttl_expiry_turns_hits_into_misses() {
        let c = cache();
        let t = c
            .set_with_ttl(b"short", b"v", Some(Nanos::from_millis(5)), Nanos::ZERO)
            .unwrap();
        let t = c.set_with_ttl(b"long", b"v", None, t).unwrap();
        // Before expiry: both hit.
        let (v, t) = c.get(b"short", t).unwrap();
        assert!(v.is_some());
        // Jump past the TTL.
        let late = t + Nanos::from_millis(10);
        let (v, late) = c.get(b"short", late).unwrap();
        assert!(v.is_none(), "expired object served");
        let (v, _) = c.get(b"long", late).unwrap();
        assert!(v.is_some(), "unexpiring object lost");
        assert_eq!(c.metrics().expired, 1);
        // The expired entry is reclaimed from the index.
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn expired_key_can_be_reinserted() {
        let c = cache();
        let t = c
            .set_with_ttl(b"k", b"v1", Some(Nanos::from_millis(1)), Nanos::ZERO)
            .unwrap();
        let late = t + Nanos::from_millis(2);
        let (v, late) = c.get(b"k", late).unwrap();
        assert!(v.is_none());
        let late = c.set(b"k", b"v2", late).unwrap();
        let (v, _) = c.get(b"k", late).unwrap();
        assert_eq!(v.as_deref(), Some(&b"v2"[..]));
    }

    #[test]
    fn reinsertion_rescues_hot_objects_across_eviction() {
        // Two caches, identical churn; one rescues accessed objects.
        let run = |fraction: f64| {
            let backend = Arc::new(BlockBackend::new(
                Arc::new(RamDisk::new(64)),
                4 * BLOCK_SIZE,
            ));
            let config = CacheConfig {
                reinsertion_fraction: fraction,
                eviction: EvictionPolicy::Fifo, // deterministic victim order
                ..CacheConfig::small_test()
            };
            let c = LogCache::new(backend, config).unwrap();
            let value = vec![1u8; 3 * 1024];
            let mut t = Nanos::ZERO;
            t = c.set(b"hot", &value, t).unwrap();
            // Keep "hot" referenced.
            let (v, t2) = c.get(b"hot", t).unwrap();
            assert!(v.is_some());
            t = t2;
            // Churn through more than full capacity so "hot"'s region gets evicted.
            for i in 0..90u32 {
                let key = format!("cold-{i:04}");
                t = c.set(key.as_bytes(), &value, t).unwrap();
            }
            let (v, _) = c.get(b"hot", t).unwrap();
            (v.is_some(), c.metrics().reinserted_objects)
        };
        let (survived_without, reinserted_without) = run(0.0);
        let (survived_with, reinserted_with) = run(0.5);
        assert!(!survived_without, "FIFO churn should evict without policy");
        assert_eq!(reinserted_without, 0);
        assert!(survived_with, "reinsertion should rescue the hot object");
        assert!(reinserted_with > 0);
    }

    #[test]
    fn len_tracks_live_objects() {
        let c = cache();
        assert!(c.is_empty());
        let t = c.set(b"a", b"1", Nanos::ZERO).unwrap();
        let t = c.set(b"b", b"2", t).unwrap();
        c.delete(b"a", t).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn maintain_refills_clean_pool_to_watermark() {
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        let config = CacheConfig {
            clean_region_watermark: 4,
            eviction: EvictionPolicy::Fifo,
            ..CacheConfig::small_test()
        };
        let c = LogCache::new(backend, config).unwrap();
        // Seal every region: free pool empty afterwards.
        let value = vec![1u8; 15 * 1024];
        let mut t = Nanos::ZERO;
        for i in 0..16u32 {
            let key = format!("k{i:02}");
            t = c.set(key.as_bytes(), &value, t).unwrap();
        }
        t = c.flush(t).unwrap();
        assert_eq!(c.clean_regions(), 0);
        let evicted = c.maintain(t).unwrap();
        assert_eq!(evicted.len(), 4, "maintainer should evict to the watermark");
        assert_eq!(c.clean_regions(), 4);
        assert_eq!(c.metrics().maintainer_evictions, 4);
        // FIFO: the oldest sealed regions go first, in order.
        let ids: Vec<u32> = evicted.iter().map(|r| r.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // Already at the watermark: a second pass is a no-op.
        assert!(c.maintain(t).unwrap().is_empty());
    }

    #[test]
    fn concurrent_sets_and_gets_preserve_committed_values() {
        // A smoke-level version of tests/concurrency.rs: hammer one small
        // cache from several threads and require every surviving read to
        // return the exact bytes its key was last acked with.
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(256)),
            4 * BLOCK_SIZE,
        ));
        let c = Arc::new(LogCache::new(backend, CacheConfig::small_test()).unwrap());
        std::thread::scope(|s| {
            for thread in 0..4u32 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    let mut t = Nanos::ZERO;
                    for i in 0..200u32 {
                        let key = format!("t{thread}-k{:02}", i % 16);
                        let value = format!("t{thread}-v{i:04}");
                        t = c.set(key.as_bytes(), value.as_bytes(), t).unwrap();
                        let (got, t2) = c.get(key.as_bytes(), t).unwrap();
                        t = t2;
                        if let Some(got) = got {
                            // Keys are thread-private: a hit must be the
                            // value this thread just wrote.
                            assert_eq!(got.as_ref(), value.as_bytes(), "{key} served wrong bytes");
                        }
                    }
                });
            }
        });
        assert!(c.metrics().sets > 0);
    }

    // ------------------------------------------------------------------
    // Unsafe-core tests — the Miri targets. `scripts/miri.sh` runs
    // `cargo miri test -p zns-cache buffer_` so every unsafe entry point
    // of RegionBuffer (write, slice, as_slice, write_object) is validated
    // under Stacked Borrows, including the cross-thread disjoint-write
    // pattern the engine relies on.
    // ------------------------------------------------------------------

    #[test]
    fn buffer_write_then_slice_roundtrip() {
        let buf = RegionBuffer::new(RegionId(0), 64);
        // SAFETY: single-threaded test; we own the whole buffer.
        unsafe { buf.write(3, b"hello") };
        buf.commit.commit(8);
        // SAFETY: the range was just committed.
        let got = unsafe { buf.slice(3, 5) };
        assert_eq!(got, b"hello");
        // SAFETY: zero-length reads are always in-contract.
        assert_eq!(unsafe { buf.slice(60, 0) }, b"");
    }

    #[test]
    fn buffer_disjoint_concurrent_writes_then_sealed_image() {
        // The engine's phase-2 pattern in miniature: four writers copy
        // into disjoint reservations with no lock, commit, and a sealer
        // quiesces before taking the full image.
        let buf = Arc::new(RegionBuffer::new(RegionId(0), 32));
        std::thread::scope(|s| {
            for i in 0..4usize {
                let buf = Arc::clone(&buf);
                s.spawn(move || {
                    let fill = [i as u8 + 1; 8];
                    // SAFETY: reservation i*8..i*8+8 is exclusively ours.
                    unsafe { buf.write(i * 8, &fill) };
                    buf.commit.commit(8);
                });
            }
        });
        buf.commit.quiesce(32);
        // SAFETY: all 32 reserved bytes are committed and no writer is
        // alive (scope joined), matching the seal contract.
        let image = unsafe { buf.as_slice() };
        for i in 0..4 {
            assert!(image[i * 8..(i + 1) * 8].iter().all(|&b| b == i as u8 + 1));
        }
    }

    #[test]
    fn buffer_write_object_serializes_parseable_header() {
        let buf = RegionBuffer::new(RegionId(1), 128);
        let crc = LogCache::object_crc(b"key", b"value");
        // SAFETY: single-threaded test; the object's range is ours.
        unsafe { LogCache::write_object(&buf, 0, b"key", b"value", crc) };
        buf.commit.commit(OBJECT_HEADER + 8);
        // SAFETY: committed above.
        let obj = unsafe { buf.slice(0, OBJECT_HEADER + 8) };
        assert_eq!(u16::from_le_bytes([obj[0], obj[1]]), 3, "key length");
        assert_eq!(
            u32::from_le_bytes([obj[4], obj[5], obj[6], obj[7]]),
            5,
            "value length"
        );
        assert_eq!(LogCache::header_crc(obj), Some(crc));
        assert_eq!(&obj[OBJECT_HEADER..OBJECT_HEADER + 3], b"key");
        assert_eq!(&obj[OBJECT_HEADER + 3..], b"value");
    }

    #[test]
    fn buffer_empty_write_is_a_noop() {
        let buf = RegionBuffer::new(RegionId(0), 8);
        // SAFETY: empty writes touch no bytes; any offset is in-contract.
        unsafe { buf.write(8, &[]) };
        assert_eq!(buf.commit.committed(), 0);
    }

    #[test]
    fn header_crc_rejects_short_slices_without_panicking() {
        assert_eq!(LogCache::header_crc(&[0u8; OBJECT_HEADER - 1]), None);
        assert_eq!(LogCache::header_crc(&[]), None);
    }

    // ------------------------------------------------------------------
    // Panic regression: every failure reachable from the public API must
    // surface as a typed error, never a panic (satellite of the
    // verification-layer PR; `cargo xtask lint` enforces the static side).
    // ------------------------------------------------------------------

    // ------------------------------------------------------------------
    // Dying-device robustness: retry jitter, write reroute, scrubber.
    // ------------------------------------------------------------------

    /// A Zone-Cache rig over a fault-injectable ZNS device.
    fn zoned_cache() -> (
        Arc<sim::fault::FaultInjector>,
        Arc<zns::ZnsDevice>,
        LogCache,
    ) {
        let inj = Arc::new(sim::fault::FaultInjector::with_seed(7));
        let dev = Arc::new(
            zns::ZnsDevice::new(zns::ZnsConfig::small_test())
                .with_fault_injector(Arc::clone(&inj)),
        );
        let backend = Arc::new(crate::backend::ZoneBackend::new(Arc::clone(&dev)));
        let c = LogCache::new(backend, CacheConfig::small_test()).unwrap();
        (inj, dev, c)
    }

    /// Runs one failing-then-succeeding retry sequence and returns the
    /// timestamp presented to each attempt.
    fn retry_attempt_times(c: &LogCache, fails: u32) -> Vec<Nanos> {
        let mut seen = Vec::new();
        let mut left = fails;
        c.retry_io(Nanos::ZERO, |t| {
            seen.push(t);
            if left > 0 {
                left -= 1;
                Err(CacheError::Io("transient".into()))
            } else {
                Ok(t)
            }
        })
        .unwrap();
        seen
    }

    #[test]
    fn retry_backoff_jitter_decorrelates_concurrent_sequences() {
        // Two retry sequences starting at the same instant (the 8-thread
        // retry-storm shape) must not back off in lockstep: each draws a
        // fresh salt, so their pause schedules diverge.
        let c = cache();
        assert!(c.config().retry.jitter, "jitter must default on");
        let a = retry_attempt_times(&c, 2);
        let b = retry_attempt_times(&c, 2);
        assert_eq!(a.len(), 3);
        assert_eq!(a[0], b[0], "first attempts are un-delayed");
        assert_ne!(
            &a[1..],
            &b[1..],
            "jittered retry sequences re-collided in lockstep"
        );
        // And the jitter is bounded: never more than 1.5x the base delay.
        let base = c.config().retry.backoff;
        assert!(a[1] <= Nanos::ZERO + base + base / 2);

        // With jitter disabled the schedule is exact and repeatable.
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        let config = CacheConfig {
            retry: RetryPolicy::no_jitter(),
            ..CacheConfig::small_test()
        };
        let c = LogCache::new(backend, config).unwrap();
        let a = retry_attempt_times(&c, 2);
        let b = retry_attempt_times(&c, 2);
        assert_eq!(a, b, "no_jitter schedules must be identical");
        assert_eq!(a[1] - a[0], c.config().retry.backoff);
    }

    #[test]
    fn set_survives_permanent_region_flush_failure() {
        use sim::fault::{FaultKind, FaultyDevice};
        let faulty = Arc::new(FaultyDevice::new(Arc::new(RamDisk::new(64))));
        let backend = Arc::new(BlockBackend::new(
            Arc::clone(&faulty) as Arc<dyn sim::BlockDevice>,
            4 * BLOCK_SIZE,
        ));
        let c = LogCache::new(backend, CacheConfig::small_test()).unwrap();
        let value = vec![9u8; 15 * 1024];
        let t = c.set(b"doomed", &value, Nanos::ZERO).unwrap();
        // The next seal's flush fails through the entire retry budget.
        faulty.arm(FaultKind::Writes, u64::from(c.config().retry.attempts));
        // This set seals the full buffer; the flush dies permanently, the
        // region is quarantined, and the set reroutes to a fresh region
        // instead of surfacing the dead region's error.
        let t = c.set(b"survivor", &value, t).unwrap();
        let m = c.metrics();
        assert_eq!(m.write_reroutes, 1, "{m:?}");
        assert_eq!(m.flush_failures, 1);
        assert_eq!(m.quarantined_regions, 1);
        let t = c.flush(t).unwrap();
        let (v, t) = c.get(b"doomed", t).unwrap();
        assert!(v.is_none(), "objects of a failed flush must not resurface");
        let (v, _) = c.get(b"survivor", t).unwrap();
        assert_eq!(v.as_deref(), Some(&value[..]), "rerouted set lost");
    }

    #[test]
    fn scrub_invalidates_latent_corruption_before_it_is_served() {
        let (inj, _dev, c) = zoned_cache();
        // One write persists with a silently flipped bit; nothing fails
        // until the data is read back. The object fills its whole region
        // so the flip must land inside it.
        inj.push(sim::fault::FaultSpec::latent_corruption(1));
        let value = vec![3u8; c.backend.region_size() - OBJECT_HEADER - 6];
        let t = c.set(b"rotten", &value, Nanos::ZERO).unwrap();
        let t = c.flush(t).unwrap();
        let report = c.scrub(t).unwrap();
        assert_eq!(report.corrupt_objects, 1, "{report:?}");
        assert_eq!(report.regions_scanned, 1);
        assert_eq!(c.metrics().scrub_corrupt_objects, 1);
        assert_eq!(c.metrics().scrub_passes, 1);
        // After the scrub the object is a miss — bad bytes never surface.
        let (v, _) = c.get(b"rotten", report.done).unwrap();
        assert!(v.is_none(), "corrupt object served after scrub");
    }

    #[test]
    fn scrub_salvages_live_data_off_a_readonly_zone() {
        let (_inj, dev, c) = zoned_cache();
        let value = vec![5u8; 15 * 1024];
        let t = c.set(b"precious", &value, Nanos::ZERO).unwrap();
        let t = c.flush(t).unwrap();
        let full = (0..dev.num_zones())
            .map(zns::ZoneId)
            .find(|&z| dev.zone_state(z) == Ok(zns::ZoneState::Full))
            .expect("flush sealed a zone");
        dev.degrade(full, false, t).unwrap();
        let report = c.scrub(t).unwrap();
        assert_eq!(report.salvaged_objects, 1, "{report:?}");
        assert_eq!(report.retired_regions, 1);
        assert!(report.salvaged_bytes > 0);
        let m = c.metrics();
        assert_eq!(m.zones_readonly, 1);
        assert_eq!(m.quarantined_regions, 1, "retired region not quarantined");
        assert_eq!(m.scrub_salvaged_bytes, report.salvaged_bytes);
        // The object survives its zone: served from the salvage copy.
        let (v, _) = c.get(b"precious", report.done).unwrap();
        assert_eq!(v.as_deref(), Some(&value[..]), "salvage lost the object");
    }

    #[test]
    fn scrub_retires_an_offline_zone_and_its_objects_miss() {
        let (_inj, dev, c) = zoned_cache();
        let value = vec![6u8; 15 * 1024];
        let t = c.set(b"gone", &value, Nanos::ZERO).unwrap();
        let t = c.flush(t).unwrap();
        let full = (0..dev.num_zones())
            .map(zns::ZoneId)
            .find(|&z| dev.zone_state(z) == Ok(zns::ZoneState::Full))
            .expect("flush sealed a zone");
        dev.degrade(full, true, t).unwrap();
        let report = c.scrub(t).unwrap();
        assert_eq!(report.retired_regions, 1, "{report:?}");
        assert_eq!(report.salvaged_objects, 0);
        let m = c.metrics();
        assert_eq!(m.zones_offline, 1);
        assert_eq!(m.quarantined_regions, 1);
        // Miss, not an error and not stale bytes.
        let (v, t) = c.get(b"gone", report.done).unwrap();
        assert!(v.is_none(), "offline zone's object served");
        // The engine keeps working at reduced capacity.
        let t = c.set(b"after", b"ok", t).unwrap();
        let (v, _) = c.get(b"after", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"ok"[..]));
    }

    #[test]
    fn io_exhaustion_surfaces_as_error_never_panic() {
        use sim::fault::{FaultKind, FaultyDevice};
        let faulty = Arc::new(FaultyDevice::new(Arc::new(RamDisk::new(64))));
        let backend = Arc::new(BlockBackend::new(
            Arc::clone(&faulty) as Arc<dyn sim::BlockDevice>,
            4 * BLOCK_SIZE,
        ));
        let c = LogCache::new(backend, CacheConfig::small_test()).unwrap();
        let t = c.set(b"k", b"v", Nanos::ZERO).unwrap();
        // Permanent faults: the whole retry budget fails. The old
        // retry_io ended in `unreachable!()` after its for-loop; this
        // pins the loop-shaped replacement to the error path.
        faulty.arm(FaultKind::All, u64::MAX);
        let err = c.flush(t).unwrap_err();
        assert!(matches!(err, CacheError::Io(_)), "got {err:?}");
        // The failed region was quarantined, its index entries dropped;
        // the engine stays usable once the device recovers.
        faulty.disarm();
        let (v, t) = c.get(b"k", t).unwrap();
        assert_eq!(v, None, "entries of a failed flush must not resurface");
        let t = c.set(b"k2", b"v2", t).unwrap();
        let (v, _) = c.get(b"k2", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"v2"[..]));
    }
}
