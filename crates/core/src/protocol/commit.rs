//! Committed-bytes seal quiescence.
//!
//! The append path is a three-phase protocol: (1) *reserve* a byte range
//! of the active region buffer under the writer mutex, (2) *copy* the
//! payload into the reserved range with no lock held, (3) *commit* by
//! adding the range's length to this counter. Sealing — which flushes
//! the whole buffer image to the device — holds the writer mutex (so no
//! new reservation can start) and then [quiesces](CommitWindow::quiesce)
//! until every granted reservation has committed. Without the quiesce, a
//! region image could hit flash with a copy still in flight and serve
//! torn objects forever after.
//!
//! # Ordering contract
//!
//! [`CommitWindow::commit`] is `Release` and [`CommitWindow::committed`]
//! is `Acquire`: when the sealer observes `committed >= reserved`, every
//! payload byte written before each `commit` is visible to it. The same
//! edge publishes an object's bytes to unlocked buffer readers that
//! found its index entry (the index insert happens after `commit`, under
//! a shard lock that is itself a second, independent publication edge).
//!
//! Model-checked in `tests/loom.rs` (`commit_window_*`): the exhaustive
//! schedule space of two committing writers and one sealer, including a
//! negative model demonstrating that a `Relaxed` commit lets the sealer
//! observe the count without the bytes.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::spin_loop;

/// Byte-commit counter for one active region buffer.
///
/// Tracks how many reserved bytes have had their payload copy completed.
/// Monotone over a buffer's lifetime; a fresh buffer starts a fresh
/// window.
#[derive(Debug, Default)]
pub struct CommitWindow {
    committed: AtomicUsize,
}

impl CommitWindow {
    /// A window with zero committed bytes.
    pub const fn new() -> Self {
        CommitWindow {
            committed: AtomicUsize::new(0),
        }
    }

    /// Publishes `len` copied bytes (phase 3 of the append protocol).
    ///
    /// `Release`: pairs with [`committed`](Self::committed) so the bytes
    /// written before this call are visible to whoever observes the
    /// count — the quiescing sealer, or a buffer reader revalidating an
    /// index entry.
    pub fn commit(&self, len: usize) {
        self.committed.fetch_add(len, Ordering::Release);
    }

    /// Bytes committed so far (`Acquire`, see [`commit`](Self::commit)).
    pub fn committed(&self) -> usize {
        self.committed.load(Ordering::Acquire)
    }

    /// Spins until at least `reserved` bytes are committed.
    ///
    /// Sound only while no new reservation can be granted — i.e. the
    /// caller holds the writer mutex. The engine's sealer does; see
    /// `seal_active`.
    pub fn quiesce(&self, reserved: usize) {
        while self.committed() < reserved {
            spin_loop();
        }
    }
}
