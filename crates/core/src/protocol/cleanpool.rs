//! Clean-region pool handoff.
//!
//! The maintainer evicts sealed regions in the background and parks the
//! reclaimed slots here; the write path pops one when it needs a fresh
//! active region, and falls back to evicting inline when the pool is dry
//! (the backpressure contract). The pool itself is plain data guarded by
//! the writer mutex — the *protocol* is the ownership discipline:
//!
//! * a region id entering the pool is owned by the pool alone (the
//!   evictor must have finished draining readers and discarding
//!   storage before pushing);
//! * [`pop`](CleanPool::pop) transfers ownership to exactly one caller;
//! * a region id can never be in the pool twice — a double push means
//!   two future writers would both treat the same slot as exclusively
//!   theirs, which is the use-after-free of this design.
//!
//! The no-duplicate invariant is debug-asserted on every push, so every
//! existing test doubles as a handoff check. The handoff interleavings
//! (maintainer refilling vs. writers draining vs. inline eviction when
//! dry) are model-checked in `tests/loom.rs` (`clean_pool_*`).

use std::collections::VecDeque;

/// FIFO pool of clean (immediately allocatable) region slots.
#[derive(Debug, Default)]
pub struct CleanPool {
    free: VecDeque<u32>,
}

impl CleanPool {
    /// An empty pool.
    pub const fn new() -> Self {
        CleanPool {
            free: VecDeque::new(),
        }
    }

    /// Hands a reclaimed region to the pool.
    ///
    /// Debug-asserts the ownership invariant: the region must not
    /// already be pooled (a double-free of the slot).
    pub fn push(&mut self, region: u32) {
        debug_assert!(
            !self.free.contains(&region),
            "clean-pool invariant violated: region {region} pushed twice"
        );
        self.free.push_back(region);
    }

    /// Takes exclusive ownership of the oldest clean region, if any.
    pub fn pop(&mut self) -> Option<u32> {
        self.free.pop_front()
    }

    /// Clean regions currently pooled.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// Whether the pool is dry (the write path must evict inline).
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Empties the pool (recovery restore rebuilds it from a snapshot).
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

impl FromIterator<u32> for CleanPool {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut pool = CleanPool::new();
        for region in iter {
            pool.push(region);
        }
        pool
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_exclusive_handoff() {
        let mut pool: CleanPool = (0..3).collect();
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.pop(), Some(0));
        assert_eq!(pool.pop(), Some(1));
        pool.push(0);
        assert_eq!(pool.pop(), Some(2));
        assert_eq!(pool.pop(), Some(0));
        assert_eq!(pool.pop(), None);
        assert!(pool.is_empty());
    }

    #[test]
    #[should_panic(expected = "pushed twice")]
    #[cfg(debug_assertions)]
    fn double_push_is_caught() {
        let mut pool = CleanPool::new();
        pool.push(7);
        pool.push(7);
    }
}
