//! In-flight flush completion handoff.
//!
//! With the async I/O core, sealing detaches the full region buffer as a
//! flush *job* and releases the writer mutex before the device call runs.
//! Whoever later needs that flush's outcome — the next sealer draining
//! the pipeline, an explicit `flush()` barrier, or an evictor about to
//! discard the region — waits on an [`InflightCell`]: a one-shot cell the
//! submitter fills with the completion timestamp when the device call
//! returns.
//!
//! # Ordering contract
//!
//! [`InflightCell::complete`] stores the completion time and then flips
//! the state flag, both `Release`; [`InflightCell::try_done`] loads the
//! flag and then the time, both `Acquire`. When a waiter observes the
//! flag set, the timestamp — and every write the submitter made before
//! completing (metrics, trace events, sealed-slot metadata) — is visible
//! to it. The cell is single-shot: exactly one submitter completes it,
//! any number of waiters may poll it.
//!
//! Model-checked in `tests/loom.rs` (`inflight_*`): a submitter thread
//! completing with a payload write before the `complete`, and a waiter
//! spinning on `try_done` that must observe the payload; the negative
//! twin demonstrates that a `Relaxed` flag store lets the waiter observe
//! the flag without the payload.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::spin_loop;
use sim::Nanos;

const PENDING: u64 = 0;
const DONE: u64 = 1;

/// One-shot completion cell for a detached region flush.
#[derive(Debug)]
pub struct InflightCell {
    state: AtomicU64,
    done_ns: AtomicU64,
}

impl Default for InflightCell {
    fn default() -> Self {
        Self::new()
    }
}

impl InflightCell {
    /// A pending cell.
    pub fn new() -> Self {
        InflightCell {
            state: AtomicU64::new(PENDING),
            done_ns: AtomicU64::new(0),
        }
    }

    /// Fills the cell with the flush's completion time.
    ///
    /// `Release` on both stores: pairs with [`try_done`](Self::try_done)
    /// so everything the submitter wrote before completing is visible to
    /// whoever observes the done flag. Must be called exactly once.
    pub fn complete(&self, done: Nanos) {
        self.done_ns.store(done.as_nanos(), Ordering::Release);
        self.state.store(DONE, Ordering::Release);
    }

    /// Returns the completion time if the flush has completed.
    ///
    /// `Acquire` on both loads (see [`complete`](Self::complete)).
    pub fn try_done(&self) -> Option<Nanos> {
        if self.state.load(Ordering::Acquire) == DONE {
            Some(Nanos(self.done_ns.load(Ordering::Acquire)))
        } else {
            None
        }
    }

    /// Spins until the submitter completes the cell.
    ///
    /// Sound because the engine submits a flush on the same thread that
    /// detached it, before any waiter can queue behind the next seal: a
    /// pending cell always has a live submitter mid-device-call.
    pub fn wait_done(&self) -> Nanos {
        loop {
            if let Some(done) = self.try_done() {
                return done;
            }
            spin_loop();
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn starts_pending_then_completes_once() {
        let cell = InflightCell::new();
        assert_eq!(cell.try_done(), None);
        cell.complete(Nanos(42));
        assert_eq!(cell.try_done(), Some(Nanos(42)));
        assert_eq!(cell.wait_done(), Nanos(42));
    }

    #[test]
    fn waiters_across_threads_observe_completion() {
        let cell = std::sync::Arc::new(InflightCell::new());
        let waiter = {
            let cell = cell.clone();
            std::thread::spawn(move || cell.wait_done())
        };
        cell.complete(Nanos(7));
        assert_eq!(waiter.join().unwrap(), Nanos(7));
    }
}
