//! Region generation/pin revalidation.
//!
//! Unlocked reads and wholesale region eviction race by design. The
//! engine keeps reads off every engine lock with two per-region words:
//!
//! * a **generation** counter, bumped the moment a region's contents
//!   stop being trustworthy (eviction start, GC drop, quarantine,
//!   re-activation), and
//! * a **pin** count of in-flight unlocked reads, which eviction drains
//!   to zero before the region's storage is reclaimed.
//!
//! Reader: `pin` → `sample` the generation → re-check the index → read
//! from the device with no lock → `changed_since(sample)`; a changed
//! generation means the bytes may be reclaimed garbage, so the read is
//! discarded and retried from the index. Evictor: `invalidate` → remove
//! index entries → `drain` pins → discard storage.
//!
//! # Why `SeqCst`
//!
//! The crossing pattern is store buffering (Dekker): the reader writes
//! `pins` then loads `generation`; the evictor writes `generation` then
//! loads `pins`. With only release/acquire, one execution lets *both*
//! sides read stale values — the reader samples the old generation while
//! the evictor reads zero pins — and the reader then trusts storage the
//! evictor is already discarding. Independent writes followed by loads
//! of each other's variable require a single total order, which only
//! `SeqCst` provides. The unpin itself stays `Release`: it is a pure
//! "my reads are done" publication, ordered before the drain's `SeqCst`
//! (acquiring) load observes it.
//!
//! Model-checked in `tests/loom.rs` (`generation_*`): the exhaustive
//! read-vs-evict race, plus a negative model showing the acquire/release
//! variant reaches the both-stale execution.

use crate::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use crate::sync::spin_loop;

/// Monotone invalidation counter for one region slot.
#[derive(Debug, Default)]
pub struct Generation {
    gen: AtomicU64,
}

impl Generation {
    /// A fresh generation (zero).
    pub const fn new() -> Self {
        Generation {
            gen: AtomicU64::new(0),
        }
    }

    /// Samples the current generation before an unlocked read.
    ///
    /// `SeqCst`: must be totally ordered against a concurrent
    /// [`invalidate`](Self::invalidate) (see the module docs' store-
    /// buffering argument).
    pub fn sample(&self) -> u64 {
        self.gen.load(Ordering::SeqCst)
    }

    /// Marks the region's contents untrustworthy (eviction, GC drop,
    /// quarantine, re-activation). Returns the *previous* generation.
    ///
    /// `SeqCst` read-modify-write: the bump must be visible to any
    /// reader whose pin the evictor's subsequent [`Pins::drain`] could
    /// miss.
    pub fn invalidate(&self) -> u64 {
        self.gen.fetch_add(1, Ordering::SeqCst)
    }

    /// Whether the region was invalidated after `sampled` was taken —
    /// i.e. whether an unlocked read that started then must be
    /// discarded.
    pub fn changed_since(&self, sampled: u64) -> bool {
        self.gen.load(Ordering::SeqCst) != sampled
    }
}

/// In-flight unlocked-read count for one region slot.
#[derive(Debug, Default)]
pub struct Pins {
    readers: AtomicU32,
}

impl Pins {
    /// No pinned readers.
    pub const fn new() -> Self {
        Pins {
            readers: AtomicU32::new(0),
        }
    }

    /// Pins the region for an unlocked read. The pin is dropped (RAII)
    /// when the returned guard goes out of scope, so early returns and
    /// `?` cannot leak a reader count and wedge eviction.
    ///
    /// `SeqCst` read-modify-write: the reader's pin must be totally
    /// ordered against the evictor's [`Generation::invalidate`] (store
    /// buffering, see the module docs).
    pub fn pin(&self) -> PinGuard<'_> {
        self.readers.fetch_add(1, Ordering::SeqCst);
        PinGuard(&self.readers)
    }

    /// Spins until no reader is pinned. Called by the evictor *after*
    /// [`Generation::invalidate`]; on return, every read that pinned
    /// before the invalidation has finished, and every later read will
    /// observe the new generation and discard itself — so the storage
    /// can be reclaimed.
    ///
    /// `SeqCst` load: the total order with `pin` closes the store-
    /// buffering race; its acquire half orders the subsequent discard
    /// after the drained readers' device reads (paired with the
    /// `Release` unpin).
    pub fn drain(&self) {
        while self.readers.load(Ordering::SeqCst) != 0 {
            spin_loop();
        }
    }

    /// Current pin count (tests/diagnostics only — any nonzero answer is
    /// stale the moment it returns).
    pub fn count(&self) -> u32 {
        self.readers.load(Ordering::SeqCst)
    }
}

/// RAII pin released on drop.
///
/// The unpin is `Release`: everything the reader did while pinned (the
/// device read of the pinned region) is ordered before an evictor's
/// drain observing the count reach zero.
#[derive(Debug)]
pub struct PinGuard<'a>(&'a AtomicU32);

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}
