//! The engine's lock-free protocols, extracted into minimal, separately
//! model-checkable pieces.
//!
//! [`crate::engine`] composes four protocols that run outside (or only
//! partially inside) the writer mutex. Each lives here as a small type
//! whose entire synchronization surface goes through [`crate::sync`], so
//! the loom suite (`tests/loom.rs`, built with `RUSTFLAGS="--cfg loom"`)
//! can explore every schedule of the *same code* the engine runs:
//!
//! | Protocol | Type | Engine use |
//! |----------|------|-----------|
//! | committed-bytes seal quiescence | [`CommitWindow`] | a seal must not flush a region image while a reservation's payload copy is still in flight |
//! | generation/pin revalidation | [`Generation`] + [`Pins`] | an unlocked read must never trust storage an eviction reclaimed |
//! | clean-pool handoff | [`CleanPool`] | a region evicted by the maintainer is handed to exactly one future writer |
//! | in-flight flush completion | [`InflightCell`] | a detached flush's completion time (and everything the submitter wrote) is published to pipeline waiters exactly once |
//!
//! The fourth protocol — append-window reservation — is the part that
//! *stays inside* the writer mutex by design: reservations are granted
//! only under the lock, which is what makes the other three sound. The
//! loom suite models it together with [`CommitWindow`] (reserve under a
//! mutex, copy and commit outside it).
//!
//! See `DESIGN.md` §9 for what is verified where.

pub mod cleanpool;
pub mod commit;
pub mod generation;
pub mod inflight;

pub use cleanpool::CleanPool;
pub use commit::CommitWindow;
pub use generation::{Generation, PinGuard, Pins};
pub use inflight::InflightCell;
