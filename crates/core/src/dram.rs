//! The DRAM tier of the hybrid cache.
//!
//! CacheLib is a hybrid cache: a byte-capped DRAM LRU sits in front of the
//! flash engine (the paper's RocksDB evaluation provisions 32 MiB of DRAM
//! against a 5 GiB flash cache). This module provides that tier: a strict
//! LRU over owned entries, evicting by total resident bytes.
//!
//! Entries carry their full key and expiry, not just the value. The engine
//! needs both when it runs the tier **write-back** (DESIGN.md §10): an
//! evicted entry is demoted to the flash log, which requires the key to
//! serialize the object, and a DRAM-first lookup must be able to reject
//! hash collisions and expired entries without consulting the flash index.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;
use sim::Nanos;

/// One resident object: key, value and absolute expiry (`Nanos::MAX` for
/// no TTL). Both byte buffers count against the tier's capacity.
#[derive(Clone, Debug)]
pub struct DramEntry {
    /// Full key bytes (hashes collide; lookups verify against this).
    pub key: Bytes,
    /// Value bytes.
    pub value: Bytes,
    /// Absolute expiry; entries at or past it are misses.
    pub expiry: Nanos,
    /// Whether the entry was looked up since it entered the tier. The
    /// engine's write-back demotion gate reads this on eviction:
    /// never-accessed entries are one-hit-wonders and are dropped instead
    /// of demoted (CacheLib's reject-first admission). Insert with
    /// `false`; [`DramCache::get`] sets it.
    pub accessed: bool,
}

impl DramEntry {
    fn size(&self) -> usize {
        self.key.len() + self.value.len()
    }
}

/// A byte-capacity-bounded LRU map from key hash to [`DramEntry`].
///
/// # Example
///
/// ```
/// use zns_cache::dram::{DramCache, DramEntry};
/// use bytes::Bytes;
/// use sim::Nanos;
///
/// let mut c = DramCache::new(1024);
/// c.insert(1, DramEntry {
///     key: Bytes::from_static(b"k"),
///     value: Bytes::from_static(b"hello"),
///     expiry: Nanos::MAX,
///     accessed: false,
/// });
/// assert_eq!(c.get(1, b"k", Nanos::ZERO).as_deref(), Some(&b"hello"[..]));
/// assert_eq!(c.get(2, b"k", Nanos::ZERO), None);
/// ```
#[derive(Debug)]
pub struct DramCache {
    capacity_bytes: usize,
    resident_bytes: usize,
    seq: u64,
    map: HashMap<u64, (DramEntry, u64)>,
    order: BTreeMap<u64, u64>,
}

impl DramCache {
    /// Creates a cache bounded to `capacity_bytes` of keys + values. A
    /// capacity of zero disables the tier (every insert is dropped).
    pub fn new(capacity_bytes: usize) -> Self {
        DramCache {
            capacity_bytes,
            resident_bytes: 0,
            seq: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    fn touch(&mut self, hash: u64) {
        if let Some((_, old_seq)) = self.map.get(&hash) {
            let old_seq = *old_seq;
            self.order.remove(&old_seq);
            self.seq += 1;
            let seq = self.seq;
            self.order.insert(seq, hash);
            self.map.get_mut(&hash).expect("present").1 = seq;
        }
    }

    /// Looks up and LRU-touches a value. A hash hit whose stored key
    /// differs from `key` is a collision with another object and reports a
    /// miss (the resident entry keeps its slot). An entry at or past its
    /// expiry is dropped and reported as a miss.
    pub fn get(&mut self, hash: u64, key: &[u8], now: Nanos) -> Option<Bytes> {
        let entry = self.map.get(&hash).map(|(e, _)| e)?;
        if entry.key != key {
            return None;
        }
        if entry.expiry <= now {
            self.remove(hash);
            return None;
        }
        self.touch(hash);
        let (e, _) = self.map.get_mut(&hash).expect("present");
        e.accessed = true;
        Some(e.value.clone())
    }

    /// Inserts an entry, evicting LRU entries to fit. Returns the evicted
    /// entries so the caller can demote them to flash (CacheLib's
    /// DRAM→flash demotion pipeline), or `None` when the entry is larger
    /// than the whole tier and was not admitted (the caller keeps it
    /// flash-only).
    pub fn insert(&mut self, hash: u64, entry: DramEntry) -> Option<Vec<(u64, DramEntry)>> {
        if entry.size() > self.capacity_bytes {
            return None;
        }
        let mut evicted = Vec::new();
        // Replacing the resident version is supersession, not eviction —
        // the old value must never be demoted over the new one.
        self.remove(hash);
        while self.resident_bytes + entry.size() > self.capacity_bytes {
            let (&oldest_seq, &oldest_hash) = self.order.iter().next().expect("resident > 0");
            self.order.remove(&oldest_seq);
            let (e, _) = self.map.remove(&oldest_hash).expect("order/map in sync");
            self.resident_bytes -= e.size();
            evicted.push((oldest_hash, e));
        }
        self.seq += 1;
        self.resident_bytes += entry.size();
        self.order.insert(self.seq, hash);
        self.map.insert(hash, (entry, self.seq));
        Some(evicted)
    }

    /// Removes an entry if present; returns whether it existed.
    pub fn remove(&mut self, hash: u64) -> bool {
        if let Some((e, seq)) = self.map.remove(&hash) {
            self.order.remove(&seq);
            self.resident_bytes -= e.size();
            true
        } else {
            false
        }
    }

    /// Bytes currently resident (keys + values).
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the tier is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: usize) -> DramEntry {
        DramEntry {
            key: Bytes::new(),
            value: Bytes::from(vec![0u8; n]),
            expiry: Nanos::MAX,
            accessed: false,
        }
    }

    fn get(c: &mut DramCache, hash: u64) -> Option<Bytes> {
        c.get(hash, b"", Nanos::ZERO)
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = DramCache::new(30);
        assert!(c.insert(1, entry(10)).expect("admitted").is_empty());
        assert!(c.insert(2, entry(10)).expect("admitted").is_empty());
        assert!(c.insert(3, entry(10)).expect("admitted").is_empty());
        // Touch 1 so 2 becomes LRU.
        get(&mut c, 1);
        let evicted = c.insert(4, entry(10)).expect("admitted");
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, 2);
        assert!(get(&mut c, 2).is_none());
        assert!(get(&mut c, 1).is_some());
    }

    #[test]
    fn replace_frees_old_bytes_and_never_demotes_old_version() {
        let mut c = DramCache::new(20);
        c.insert(1, entry(10));
        let evicted = c.insert(1, entry(15)).expect("admitted");
        assert!(evicted.is_empty(), "supersession must not demote");
        assert_eq!(c.resident_bytes(), 15);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_value_is_not_cached() {
        let mut c = DramCache::new(10);
        assert!(c.insert(1, entry(11)).is_none());
        assert!(get(&mut c, 1).is_none());
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn key_bytes_count_against_capacity() {
        let mut c = DramCache::new(10);
        let e = DramEntry {
            key: Bytes::from_static(b"12345678"),
            value: Bytes::from(vec![0u8; 3]),
            expiry: Nanos::MAX,
            accessed: false,
        };
        assert!(c.insert(1, e).is_none(), "8 + 3 > 10 must not be admitted");
    }

    #[test]
    fn zero_capacity_disables_tier() {
        let mut c = DramCache::new(0);
        c.insert(1, entry(1));
        assert!(c.is_empty());
    }

    #[test]
    fn remove_accounting() {
        let mut c = DramCache::new(100);
        c.insert(1, entry(40));
        assert!(c.remove(1));
        assert!(!c.remove(1));
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn multi_eviction_when_large_insert() {
        let mut c = DramCache::new(30);
        c.insert(1, entry(10));
        c.insert(2, entry(10));
        c.insert(3, entry(10));
        let evicted = c.insert(4, entry(25)).expect("admitted");
        assert_eq!(evicted.len(), 3);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn hash_collision_with_different_key_misses() {
        let mut c = DramCache::new(100);
        c.insert(
            7,
            DramEntry {
                key: Bytes::from_static(b"a"),
                value: Bytes::from_static(b"va"),
                expiry: Nanos::MAX,
                accessed: false,
            },
        );
        assert!(c.get(7, b"b", Nanos::ZERO).is_none());
        // The resident entry survives the colliding probe.
        assert_eq!(c.get(7, b"a", Nanos::ZERO).as_deref(), Some(&b"va"[..]));
    }

    #[test]
    fn expired_entry_is_dropped_on_lookup() {
        let mut c = DramCache::new(100);
        c.insert(
            1,
            DramEntry {
                key: Bytes::from_static(b"k"),
                value: Bytes::from_static(b"v"),
                expiry: Nanos::from_micros(5),
                accessed: false,
            },
        );
        assert!(c.get(1, b"k", Nanos::from_micros(4)).is_some());
        assert!(c.get(1, b"k", Nanos::from_micros(5)).is_none());
        assert_eq!(c.len(), 0, "expired entry reclaimed");
        assert_eq!(c.resident_bytes(), 0);
    }
}
