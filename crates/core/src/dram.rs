//! The DRAM tier of the hybrid cache.
//!
//! CacheLib is a hybrid cache: a byte-capped DRAM LRU sits in front of the
//! flash engine (the paper's RocksDB evaluation provisions 32 MiB of DRAM
//! against a 5 GiB flash cache). This module provides that tier: a strict
//! LRU over owned byte values, evicting by total resident bytes.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;

/// A byte-capacity-bounded LRU map from key hash to value bytes.
///
/// # Example
///
/// ```
/// use zns_cache::dram::DramCache;
/// use bytes::Bytes;
///
/// let mut c = DramCache::new(1024);
/// c.insert(1, Bytes::from_static(b"hello"));
/// assert_eq!(c.get(1).as_deref(), Some(&b"hello"[..]));
/// assert_eq!(c.get(2), None);
/// ```
#[derive(Debug)]
pub struct DramCache {
    capacity_bytes: usize,
    resident_bytes: usize,
    seq: u64,
    map: HashMap<u64, (Bytes, u64)>,
    order: BTreeMap<u64, u64>,
}

impl DramCache {
    /// Creates a cache bounded to `capacity_bytes` of values. A capacity of
    /// zero disables the tier (every insert is dropped).
    pub fn new(capacity_bytes: usize) -> Self {
        DramCache {
            capacity_bytes,
            resident_bytes: 0,
            seq: 0,
            map: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    fn touch(&mut self, hash: u64) {
        if let Some((_, old_seq)) = self.map.get(&hash) {
            let old_seq = *old_seq;
            self.order.remove(&old_seq);
            self.seq += 1;
            let seq = self.seq;
            self.order.insert(seq, hash);
            self.map.get_mut(&hash).expect("present").1 = seq;
        }
    }

    /// Looks up and LRU-touches a value.
    pub fn get(&mut self, hash: u64) -> Option<Bytes> {
        if !self.map.contains_key(&hash) {
            return None;
        }
        self.touch(hash);
        self.map.get(&hash).map(|(v, _)| v.clone())
    }

    /// Inserts a value, evicting LRU entries to fit. Returns the evicted
    /// values (hash, bytes) so the caller can demote them to flash,
    /// mirroring CacheLib's DRAM→flash demotion pipeline.
    pub fn insert(&mut self, hash: u64, value: Bytes) -> Vec<(u64, Bytes)> {
        let mut evicted = Vec::new();
        if value.len() > self.capacity_bytes {
            // Too large for the tier entirely; caller keeps it flash-only.
            return evicted;
        }
        self.remove(hash);
        while self.resident_bytes + value.len() > self.capacity_bytes {
            let (&oldest_seq, &oldest_hash) = self.order.iter().next().expect("resident > 0");
            self.order.remove(&oldest_seq);
            let (v, _) = self.map.remove(&oldest_hash).expect("order/map in sync");
            self.resident_bytes -= v.len();
            evicted.push((oldest_hash, v));
        }
        self.seq += 1;
        self.resident_bytes += value.len();
        self.order.insert(self.seq, hash);
        self.map.insert(hash, (value, self.seq));
        evicted
    }

    /// Removes an entry if present; returns whether it existed.
    pub fn remove(&mut self, hash: u64) -> bool {
        if let Some((v, seq)) = self.map.remove(&hash) {
            self.order.remove(&seq);
            self.resident_bytes -= v.len();
            true
        } else {
            false
        }
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the tier is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(n: usize) -> Bytes {
        Bytes::from(vec![0u8; n])
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = DramCache::new(30);
        assert!(c.insert(1, val(10)).is_empty());
        assert!(c.insert(2, val(10)).is_empty());
        assert!(c.insert(3, val(10)).is_empty());
        // Touch 1 so 2 becomes LRU.
        c.get(1);
        let evicted = c.insert(4, val(10));
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, 2);
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
    }

    #[test]
    fn replace_frees_old_bytes() {
        let mut c = DramCache::new(20);
        c.insert(1, val(10));
        c.insert(1, val(15));
        assert_eq!(c.resident_bytes(), 15);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn oversized_value_is_not_cached() {
        let mut c = DramCache::new(10);
        assert!(c.insert(1, val(11)).is_empty());
        assert!(c.get(1).is_none());
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn zero_capacity_disables_tier() {
        let mut c = DramCache::new(0);
        c.insert(1, val(1));
        assert!(c.is_empty());
    }

    #[test]
    fn remove_accounting() {
        let mut c = DramCache::new(100);
        c.insert(1, val(40));
        assert!(c.remove(1));
        assert!(!c.remove(1));
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn multi_eviction_when_large_insert() {
        let mut c = DramCache::new(30);
        c.insert(1, val(10));
        c.insert(2, val(10));
        c.insert(3, val(10));
        let evicted = c.insert(4, val(25));
        assert_eq!(evicted.len(), 3);
        assert_eq!(c.len(), 1);
    }
}
