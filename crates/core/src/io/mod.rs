//! The engine's asynchronous I/O core: submission/completion accounting
//! over [`sim::aio`].
//!
//! Every backend call the engine makes is classified ([`IoClass`]) and
//! funnels through [`EngineIo`], which keeps submitted/completed counter
//! pairs per class. The pairs serve two audiences: the `xtask lint`
//! submit-to-complete rule (no lock may be held between a submission and
//! its completion — the counters make the window observable), and tests
//! that assert the engine never leaks an in-flight operation.
//!
//! Two shapes of use:
//!
//! * **Fused** ([`EngineIo::run`]) — reads and maintenance ops submit and
//!   complete in one call. The device model runs eagerly either way; the
//!   value is uniform accounting and a single choke point for the lint.
//! * **Split** ([`EngineIo::submitted`] / [`EngineIo::completed`] around a
//!   detached flush) — the seal path detaches the region image under the
//!   writer mutex, *releases the mutex*, then submits the flush; pipeline
//!   waiters later reap the completion through the job's
//!   [`FlushTicket`]'s [`InflightCell`].
//!
//! See `DESIGN.md` §10.

use crate::protocol::InflightCell;
use crate::sync::Arc;
use sim::Counter;

/// What kind of backend work an operation is, for accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoClass {
    /// Unlocked read-path device reads (get/delete revalidation covers).
    Read,
    /// Region-image flushes from the seal path.
    Flush,
    /// Maintainer/cleaner work: evictions, discards, scrub reads.
    Maintenance,
}

/// Pipeline handle to one detached region flush.
///
/// Created by the sealer under the writer mutex; resolved by whoever
/// needs the flush's outcome (next sealer over depth, `flush()` barrier,
/// or the evictor of that region). The cell is completed by the submitter
/// after the device call returns — success or failure alike, so a waiter
/// can never hang on a flush whose submission path already unwound.
#[derive(Debug)]
pub struct FlushTicket {
    /// Region slot the detached image is bound for.
    pub region: u32,
    /// Completion cell the submitter fills.
    pub cell: Arc<InflightCell>,
}

/// Per-class submission/completion counters.
#[derive(Debug, Default)]
pub struct EngineIo {
    read_submitted: Counter,
    read_completed: Counter,
    flush_submitted: Counter,
    flush_completed: Counter,
    maint_submitted: Counter,
    maint_completed: Counter,
}

impl EngineIo {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        EngineIo::default()
    }

    /// Records a submission of `class`.
    pub fn submitted(&self, class: IoClass) {
        match class {
            IoClass::Read => self.read_submitted.incr(),
            IoClass::Flush => self.flush_submitted.incr(),
            IoClass::Maintenance => self.maint_submitted.incr(),
        }
    }

    /// Records a completion of `class`.
    pub fn completed(&self, class: IoClass) {
        match class {
            IoClass::Read => self.read_completed.incr(),
            IoClass::Flush => self.flush_completed.incr(),
            IoClass::Maintenance => self.maint_completed.incr(),
        }
    }

    /// Fused submit+complete: runs `op` and accounts it as one submission
    /// that completed. The op must not be holding any engine lock — the
    /// same contract the split path makes observable.
    pub fn run<T, E>(
        &self,
        class: IoClass,
        op: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E> {
        self.submitted(class);
        let r = op();
        self.completed(class);
        r
    }

    /// Submissions not yet completed, across all classes. Zero whenever
    /// the engine is quiescent; tests assert this.
    pub fn in_flight(&self) -> u64 {
        (self.read_submitted.get() + self.flush_submitted.get() + self.maint_submitted.get())
            .saturating_sub(
                self.read_completed.get() + self.flush_completed.get() + self.maint_completed.get(),
            )
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use sim::Nanos;

    #[test]
    fn fused_run_balances_counters_even_on_error() {
        let io = EngineIo::new();
        assert_eq!(io.in_flight(), 0);
        let ok: Result<u32, ()> = io.run(IoClass::Read, || Ok(1));
        assert_eq!(ok, Ok(1));
        let err: Result<(), &str> = io.run(IoClass::Maintenance, || Err("io"));
        assert_eq!(err, Err("io"));
        assert_eq!(io.in_flight(), 0);
    }

    #[test]
    fn split_flush_window_is_observable() {
        let io = EngineIo::new();
        let ticket = FlushTicket {
            region: 3,
            cell: Arc::new(InflightCell::new()),
        };
        io.submitted(IoClass::Flush);
        assert_eq!(io.in_flight(), 1);
        ticket.cell.complete(Nanos(10));
        io.completed(IoClass::Flush);
        assert_eq!(io.in_flight(), 0);
        assert_eq!(ticket.cell.wait_done(), Nanos(10));
    }
}
