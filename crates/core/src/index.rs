//! The DRAM index: sharded hash map from key hash to on-flash location.
//!
//! CacheLib's Navy engine keeps the entire lookup path in DRAM — flash is
//! only touched to fetch object bytes. We mirror that: the index maps a
//! 64-bit key hash to a compact entry (region, offset, sizes, fingerprint).
//! A 32-bit secondary fingerprint filters almost all hash collisions; the
//! engine can additionally verify the full key against flash
//! (`verify_keys`) when the backing store retains payloads.
//!
//! Sharding bounds lock contention between foreground lookups and the
//! eviction path that bulk-removes a region's entries — the interaction
//! the paper holds responsible for the insertion-time jump of Fig. 3.

use parking_lot::RwLock;
use sim::Nanos;
use std::collections::HashMap;

use crate::types::RegionId;

/// Number of shards; power of two so shard selection is a mask.
const SHARDS: usize = 64;

/// A compact index entry: 16 bytes + map overhead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexEntry {
    /// Region holding the object.
    pub region: RegionId,
    /// Byte offset of the object header within the region.
    pub offset: u32,
    /// Key length in bytes.
    pub key_len: u16,
    /// Value length in bytes.
    pub value_len: u32,
    /// Secondary key fingerprint.
    pub fingerprint: u32,
    /// Absolute expiry time; `Nanos::MAX` = never expires.
    pub expiry: Nanos,
    /// Whether the object was read since insertion (reinsertion signal).
    pub accessed: bool,
}

impl IndexEntry {
    /// Total serialized object footprint (header + key + value).
    pub fn object_size(&self) -> usize {
        crate::engine::OBJECT_HEADER + self.key_len as usize + self.value_len as usize
    }
}

/// Sharded hash index.
#[derive(Debug)]
pub struct Index {
    shards: Vec<RwLock<HashMap<u64, IndexEntry>>>,
}

impl Default for Index {
    fn default() -> Self {
        Self::new()
    }
}

impl Index {
    /// Creates an empty index.
    pub fn new() -> Self {
        Index {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, hash: u64) -> &RwLock<HashMap<u64, IndexEntry>> {
        &self.shards[(hash as usize) & (SHARDS - 1)]
    }

    /// Looks up an entry by key hash + fingerprint.
    pub fn lookup(&self, hash: u64, fingerprint: u32) -> Option<IndexEntry> {
        self.shard(hash)
            .read()
            .get(&hash)
            .copied()
            .filter(|e| e.fingerprint == fingerprint)
    }

    /// Inserts or replaces an entry, returning the previous one if it
    /// existed (the caller owns invalidation bookkeeping).
    pub fn insert(&self, hash: u64, entry: IndexEntry) -> Option<IndexEntry> {
        self.shard(hash).write().insert(hash, entry)
    }

    /// Marks an entry as accessed (hit), for reinsertion policies.
    pub fn touch(&self, hash: u64, fingerprint: u32) {
        let mut shard = self.shard(hash).write();
        if let Some(e) = shard.get_mut(&hash) {
            if e.fingerprint == fingerprint {
                e.accessed = true;
            }
        }
    }

    /// Fetches the entry for `hash` only if it still points into `region`
    /// at `offset` (the eviction path's location-checked read).
    pub fn get_at(&self, hash: u64, region: RegionId, offset: u32) -> Option<IndexEntry> {
        self.shard(hash)
            .read()
            .get(&hash)
            .copied()
            .filter(|e| e.region == region && e.offset == offset)
    }

    /// Removes an entry if the fingerprint matches; returns it.
    pub fn remove(&self, hash: u64, fingerprint: u32) -> Option<IndexEntry> {
        let mut shard = self.shard(hash).write();
        match shard.get(&hash) {
            Some(e) if e.fingerprint == fingerprint => shard.remove(&hash),
            _ => None,
        }
    }

    /// Removes the entry for `hash` only if it still points into `region`
    /// at `offset` — the eviction path's conditional removal, which must
    /// not clobber a newer version of the key living elsewhere.
    ///
    /// Returns whether an entry was removed.
    pub fn remove_if_at(&self, hash: u64, region: RegionId, offset: u32) -> bool {
        let mut shard = self.shard(hash).write();
        match shard.get(&hash) {
            Some(e) if e.region == region && e.offset == offset => {
                shard.remove(&hash);
                true
            }
            _ => false,
        }
    }

    /// Number of live entries (O(shards)).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates all entries into a vector (used by recovery snapshots).
    pub fn dump(&self) -> Vec<(u64, IndexEntry)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            for (&h, &e) in shard.read().iter() {
                out.push((h, e));
            }
        }
        out
    }

    /// Clears the index.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(region: u32, offset: u32, fp: u32) -> IndexEntry {
        IndexEntry {
            region: RegionId(region),
            offset,
            key_len: 3,
            value_len: 10,
            fingerprint: fp,
            expiry: Nanos::MAX,
            accessed: false,
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let idx = Index::new();
        assert!(idx.is_empty());
        assert_eq!(idx.insert(42, entry(1, 0, 7)), None);
        assert_eq!(idx.lookup(42, 7), Some(entry(1, 0, 7)));
        // Fingerprint mismatch filters collisions.
        assert_eq!(idx.lookup(42, 8), None);
        assert_eq!(idx.remove(42, 8), None);
        assert_eq!(idx.remove(42, 7), Some(entry(1, 0, 7)));
        assert!(idx.is_empty());
    }

    #[test]
    fn insert_returns_previous() {
        let idx = Index::new();
        idx.insert(42, entry(1, 0, 7));
        let old = idx.insert(42, entry(2, 64, 7));
        assert_eq!(old, Some(entry(1, 0, 7)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn conditional_removal_respects_location() {
        let idx = Index::new();
        idx.insert(42, entry(1, 0, 7));
        // Key has moved to region 2: evicting region 1 must not remove it.
        idx.insert(42, entry(2, 0, 7));
        assert!(!idx.remove_if_at(42, RegionId(1), 0));
        assert_eq!(idx.len(), 1);
        assert!(idx.remove_if_at(42, RegionId(2), 0));
        assert!(idx.is_empty());
    }

    #[test]
    fn dump_and_clear() {
        let idx = Index::new();
        for i in 0..100u64 {
            idx.insert(i * 7919, entry(i as u32, 0, i as u32));
        }
        assert_eq!(idx.len(), 100);
        let dump = idx.dump();
        assert_eq!(dump.len(), 100);
        idx.clear();
        assert!(idx.is_empty());
    }

    #[test]
    fn touch_sets_accessed_and_get_at_checks_location() {
        let idx = Index::new();
        idx.insert(42, entry(1, 0, 7));
        assert!(!idx.lookup(42, 7).unwrap().accessed);
        idx.touch(42, 8); // wrong fingerprint: no effect
        assert!(!idx.lookup(42, 7).unwrap().accessed);
        idx.touch(42, 7);
        assert!(idx.lookup(42, 7).unwrap().accessed);
        assert!(idx.get_at(42, RegionId(1), 0).is_some());
        assert!(idx.get_at(42, RegionId(1), 4).is_none());
        assert!(idx.get_at(42, RegionId(2), 0).is_none());
    }

    #[test]
    fn object_size_math() {
        let e = entry(0, 0, 0);
        assert_eq!(e.object_size(), crate::engine::OBJECT_HEADER + 13);
    }
}
