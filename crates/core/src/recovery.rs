//! Warm-restart persistence for the cache.
//!
//! CacheLib persists its index and region metadata on clean shutdown so a
//! restarted process serves its flash contents without rewarming. We mirror
//! that: [`snapshot`] flushes the active buffer and serializes the index +
//! region tables; [`recover`] rebuilds a cache over the *same* backend
//! (whose devices retain their data across the restart).

use std::sync::Arc;

use bytes::{Buf, BufMut};
use sim::Nanos;

use crate::backend::RegionBackend;
use crate::engine::{CacheConfig, LogCache};
use crate::index::IndexEntry;
use crate::types::{CacheError, RegionId};

const MAGIC: u64 = 0xCAC4_E5A7_2024_0708;

/// Serializes the cache's DRAM state after flushing in-flight data.
///
/// Returns the snapshot bytes and the completion time of the final flush.
///
/// # Errors
///
/// Backend I/O failures while flushing.
pub fn snapshot(cache: &LogCache, now: Nanos) -> Result<(Vec<u8>, Nanos), CacheError> {
    let t = cache.flush(now)?;
    let mut buf = Vec::with_capacity(64 * 1024);
    buf.put_u64_le(MAGIC);
    buf.put_u64_le(cache.backend().region_size() as u64);
    buf.put_u32_le(cache.backend().num_regions());

    let entries = cache.index().dump();
    buf.put_u64_le(entries.len() as u64);
    for (hash, e) in entries {
        buf.put_u64_le(hash);
        buf.put_u32_le(e.region.0);
        buf.put_u32_le(e.offset);
        buf.put_u16_le(e.key_len);
        buf.put_u32_le(e.value_len);
        buf.put_u32_le(e.fingerprint);
        buf.put_u64_le(e.expiry.as_nanos());
    }

    let regions = cache.region_dump();
    buf.put_u32_le(regions.len() as u32);
    for (id, entries, live, last_access, sealed) in regions {
        buf.put_u32_le(id);
        buf.put_u32_le(entries.len() as u32);
        for (hash, offset) in entries {
            buf.put_u64_le(hash);
            buf.put_u32_le(offset);
        }
        buf.put_u32_le(live);
        buf.put_u64_le(last_access);
        buf.put_u8(sealed as u8);
    }
    Ok((buf, t))
}

/// Rebuilds a cache from a snapshot over the same backend.
///
/// # Errors
///
/// [`CacheError::BadSnapshot`] when the snapshot is truncated or does not
/// match the backend's shape.
pub fn recover(
    backend: Arc<dyn RegionBackend>,
    config: CacheConfig,
    snapshot: &[u8],
) -> Result<LogCache, CacheError> {
    let mut buf = snapshot;
    let need = |buf: &[u8], n: usize| -> Result<(), CacheError> {
        if buf.remaining() < n {
            Err(CacheError::BadSnapshot(format!(
                "truncated: need {n} bytes, have {}",
                buf.remaining()
            )))
        } else {
            Ok(())
        }
    };

    need(buf, 20)?;
    if buf.get_u64_le() != MAGIC {
        return Err(CacheError::BadSnapshot("missing magic".into()));
    }
    let region_size = buf.get_u64_le() as usize;
    let num_regions = buf.get_u32_le();
    if region_size != backend.region_size() || num_regions != backend.num_regions() {
        return Err(CacheError::BadSnapshot(format!(
            "backend shape changed: snapshot {}x{}B, backend {}x{}B",
            num_regions,
            region_size,
            backend.num_regions(),
            backend.region_size()
        )));
    }

    let cache = LogCache::new(backend, config)?;
    need(buf, 8)?;
    let n_entries = buf.get_u64_le();
    for _ in 0..n_entries {
        need(buf, 34)?;
        let hash = buf.get_u64_le();
        let entry = IndexEntry {
            region: RegionId(buf.get_u32_le()),
            offset: buf.get_u32_le(),
            key_len: buf.get_u16_le(),
            value_len: buf.get_u32_le(),
            fingerprint: buf.get_u32_le(),
            expiry: Nanos::from_nanos(buf.get_u64_le()),
            // Access recency is not persisted; a restarted cache restarts
            // its reinsertion signal cold.
            accessed: false,
        };
        cache.index().insert(hash, entry);
    }

    need(buf, 4)?;
    let n_regions = buf.get_u32_le() as usize;
    let mut regions = Vec::with_capacity(n_regions);
    for _ in 0..n_regions {
        need(buf, 8)?;
        let id = buf.get_u32_le();
        let n = buf.get_u32_le() as usize;
        need(buf, n * 12 + 13)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let hash = buf.get_u64_le();
            let offset = buf.get_u32_le();
            entries.push((hash, offset));
        }
        let live = buf.get_u32_le();
        let last_access = buf.get_u64_le();
        let sealed = buf.get_u8() != 0;
        regions.push((id, entries, live, last_access, sealed));
    }
    cache.region_restore(regions)?;
    Ok(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BlockBackend;
    use sim::{RamDisk, BLOCK_SIZE};

    fn backend() -> Arc<BlockBackend> {
        Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ))
    }

    #[test]
    fn warm_restart_preserves_contents() {
        let be = backend();
        let cache = LogCache::new(be.clone(), CacheConfig::small_test()).unwrap();
        let mut t = Nanos::ZERO;
        for i in 0..50 {
            let key = format!("key-{i}");
            let value = format!("value-{i}");
            t = cache.set(key.as_bytes(), value.as_bytes(), t).unwrap();
        }
        let (snap, t) = snapshot(&cache, t).unwrap();
        drop(cache);

        let cache2 = recover(be, CacheConfig::small_test(), &snap).unwrap();
        for i in 0..50 {
            let key = format!("key-{i}");
            let (v, _) = cache2.get(key.as_bytes(), t).unwrap();
            assert_eq!(
                v.as_deref(),
                Some(format!("value-{i}").as_bytes()),
                "key-{i} lost across restart"
            );
        }
        // The recovered cache keeps working (evictions included).
        let big = vec![0u8; 8 * 1024];
        let mut t = t;
        for i in 0..64 {
            let key = format!("post-{i}");
            t = cache2.set(key.as_bytes(), &big, t).unwrap();
        }
        assert!(cache2.metrics().evicted_regions > 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let be = backend();
        let cache = LogCache::new(be, CacheConfig::small_test()).unwrap();
        let (snap, _) = snapshot(&cache, Nanos::ZERO).unwrap();
        // Different region size.
        let other = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            8 * BLOCK_SIZE,
        ));
        assert!(matches!(
            recover(other, CacheConfig::small_test(), &snap),
            Err(CacheError::BadSnapshot(_))
        ));
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let be = backend();
        let cache = LogCache::new(be.clone(), CacheConfig::small_test()).unwrap();
        cache.set(b"k", b"v", Nanos::ZERO).unwrap();
        let (snap, _) = snapshot(&cache, Nanos::ZERO).unwrap();
        for cut in [0, 10, snap.len() / 2] {
            assert!(
                recover(be.clone(), CacheConfig::small_test(), &snap[..cut]).is_err(),
                "accepted cut at {cut}"
            );
        }
    }

    #[test]
    fn garbage_rejected() {
        let be = backend();
        assert!(matches!(
            recover(be, CacheConfig::small_test(), &[0u8; 64]),
            Err(CacheError::BadSnapshot(_))
        ));
    }
}
