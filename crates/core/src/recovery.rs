//! Warm-restart persistence for the cache.
//!
//! CacheLib persists its index and region metadata on clean shutdown so a
//! restarted process serves its flash contents without rewarming. We mirror
//! that: [`snapshot`] flushes the active buffer and serializes the index +
//! region tables; [`recover`] rebuilds a cache over the *same* backend
//! (whose devices retain their data across the restart).
//!
//! The snapshot blob carries a CRC32 trailer, so a torn or bit-flipped
//! snapshot is detected rather than deserialized into garbage. When the
//! snapshot is unusable for any reason — corrupt, truncated, absent —
//! [`recover_or_scan`] falls back to rebuilding the index by scanning the
//! on-flash regions themselves: every object carries a self-describing
//! header with its own checksum, so durably-written entries survive even a
//! power cut that destroyed all DRAM state.

use std::sync::Arc;

use bytes::{Buf, BufMut};
use sim::{crc32, Nanos};

use crate::engine::{CacheConfig, LogCache, HEADER_CRC_OFFSET, OBJECT_HEADER};
use crate::backend::RegionBackend;
use crate::index::IndexEntry;
use crate::types::{fingerprint, hash_key, CacheError, RegionId};

/// Snapshot format tag. Bumped (v2) when region records gained a seal
/// sequence number; v1 snapshots fail the magic check and recovery
/// degrades to the device scan, by design.
const MAGIC: u64 = 0xCAC4_E5A7_2024_0709;

/// Serializes the cache's DRAM state after flushing in-flight data.
///
/// Returns the snapshot bytes and the completion time of the final flush.
///
/// # Errors
///
/// Backend I/O failures while flushing.
pub fn snapshot(cache: &LogCache, now: Nanos) -> Result<(Vec<u8>, Nanos), CacheError> {
    let t = cache.flush(now)?;
    let mut buf = Vec::with_capacity(64 * 1024);
    buf.put_u64_le(MAGIC);
    buf.put_u64_le(cache.backend().region_size() as u64);
    buf.put_u32_le(cache.backend().num_regions());

    let entries = cache.index().dump();
    buf.put_u64_le(entries.len() as u64);
    for (hash, e) in entries {
        buf.put_u64_le(hash);
        buf.put_u32_le(e.region.0);
        buf.put_u32_le(e.offset);
        buf.put_u16_le(e.key_len);
        buf.put_u32_le(e.value_len);
        buf.put_u32_le(e.fingerprint);
        buf.put_u64_le(e.expiry.as_nanos());
    }

    let regions = cache.region_dump();
    buf.put_u32_le(regions.len() as u32);
    for (id, entries, live, last_access, sealed, seal_seq) in regions {
        buf.put_u32_le(id);
        buf.put_u32_le(entries.len() as u32);
        for (hash, offset) in entries {
            buf.put_u64_le(hash);
            buf.put_u32_le(offset);
        }
        buf.put_u32_le(live);
        buf.put_u64_le(last_access);
        buf.put_u8(sealed as u8);
        buf.put_u64_le(seal_seq);
    }
    // Whole-blob checksum trailer: recovery refuses corrupt snapshots.
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    Ok((buf, t))
}

/// Rebuilds a cache from a snapshot over the same backend.
///
/// # Errors
///
/// [`CacheError::BadSnapshot`] when the snapshot is truncated or does not
/// match the backend's shape.
pub fn recover(
    backend: Arc<dyn RegionBackend>,
    config: CacheConfig,
    snapshot: &[u8],
) -> Result<LogCache, CacheError> {
    if snapshot.len() < 4 {
        return Err(CacheError::BadSnapshot(format!(
            "{} bytes is too short to carry a checksum",
            snapshot.len()
        )));
    }
    let (body, trailer) = snapshot.split_at(snapshot.len() - 4);
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let computed = crc32(body);
    if stored != computed {
        return Err(CacheError::BadSnapshot(format!(
            "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    let mut buf = body;
    let need = |buf: &[u8], n: usize| -> Result<(), CacheError> {
        if buf.remaining() < n {
            Err(CacheError::BadSnapshot(format!(
                "truncated: need {n} bytes, have {}",
                buf.remaining()
            )))
        } else {
            Ok(())
        }
    };

    need(buf, 20)?;
    if buf.get_u64_le() != MAGIC {
        return Err(CacheError::BadSnapshot("missing magic".into()));
    }
    let region_size = buf.get_u64_le() as usize;
    let num_regions = buf.get_u32_le();
    if region_size != backend.region_size() || num_regions != backend.num_regions() {
        return Err(CacheError::BadSnapshot(format!(
            "backend shape changed: snapshot {}x{}B, backend {}x{}B",
            num_regions,
            region_size,
            backend.num_regions(),
            backend.region_size()
        )));
    }

    let cache = LogCache::new(backend, config)?;
    need(buf, 8)?;
    let n_entries = buf.get_u64_le();
    for _ in 0..n_entries {
        need(buf, 34)?;
        let hash = buf.get_u64_le();
        let entry = IndexEntry {
            region: RegionId(buf.get_u32_le()),
            offset: buf.get_u32_le(),
            key_len: buf.get_u16_le(),
            value_len: buf.get_u32_le(),
            fingerprint: buf.get_u32_le(),
            expiry: Nanos::from_nanos(buf.get_u64_le()),
            // Access recency is not persisted; a restarted cache restarts
            // its reinsertion signal cold.
            accessed: false,
        };
        cache.index().insert(hash, entry);
    }

    need(buf, 4)?;
    let n_regions = buf.get_u32_le() as usize;
    let mut regions = Vec::with_capacity(n_regions);
    for _ in 0..n_regions {
        need(buf, 8)?;
        let id = buf.get_u32_le();
        let n = buf.get_u32_le() as usize;
        need(buf, n * 12 + 21)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let hash = buf.get_u64_le();
            let offset = buf.get_u32_le();
            entries.push((hash, offset));
        }
        let live = buf.get_u32_le();
        let last_access = buf.get_u64_le();
        let sealed = buf.get_u8() != 0;
        let seal_seq = buf.get_u64_le();
        regions.push((id, entries, live, last_access, sealed, seal_seq));
    }
    cache.region_restore(regions)?;
    Ok(cache)
}

/// Recovers from a snapshot when possible, otherwise rebuilds the index by
/// scanning the backend's regions.
///
/// This is the full recovery ladder: a valid snapshot gives back the exact
/// pre-shutdown cache (TTLs, recency, region tables); a corrupt, truncated,
/// or absent snapshot degrades to [`scan_rebuild`], which recovers every
/// durably-written, checksum-valid object.
///
/// # Errors
///
/// Backend I/O failures during the scan. Snapshot problems never error —
/// they trigger the fallback.
pub fn recover_or_scan(
    backend: Arc<dyn RegionBackend>,
    config: CacheConfig,
    snapshot: Option<&[u8]>,
    now: Nanos,
) -> Result<LogCache, CacheError> {
    if let Some(snap) = snapshot {
        match recover(Arc::clone(&backend), config.clone(), snap) {
            Ok(cache) => return Ok(cache),
            Err(CacheError::BadSnapshot(_)) => {}
            Err(other) => return Err(other),
        }
    }
    scan_rebuild(backend, config, now)
}

/// Rebuilds a cache index by walking every region's on-flash log.
///
/// Objects are parsed from each region's durably-readable prefix (zones
/// expose their write pointer, so a torn zone write yields its persisted
/// prefix). Parsing a region stops at the first hole (`key_len == 0`, the
/// flush padding), malformed length, or checksum failure — after a torn
/// write, everything before the tear is still served.
///
/// Scan limitations, by design: per-object TTLs lived only in the DRAM
/// index, so recovered objects never expire; and without write sequence
/// numbers, a key duplicated across regions keeps whichever copy is
/// scanned last. Both are acceptable for a cache (stale data is legal,
/// lost data is a miss).
///
/// # Errors
///
/// Engine construction failures ([`CacheError::BackendTooSmall`]). Regions
/// that cannot be read are skipped, not fatal.
pub fn scan_rebuild(
    backend: Arc<dyn RegionBackend>,
    config: CacheConfig,
    now: Nanos,
) -> Result<LogCache, CacheError> {
    let cache = LogCache::new(Arc::clone(&backend), config)?;
    let mut region_tables = Vec::with_capacity(backend.num_regions() as usize);
    let mut recovered = 0u64;
    let mut t = now;
    // Without a snapshot the true seal order is unknown; region-id order is
    // a deterministic stand-in for the recovered FIFO.
    let mut next_seal_seq = 0u64;
    for r in 0..backend.num_regions() {
        let region = RegionId(r);
        let readable = backend.readable_bytes(region).min(backend.region_size());
        let mut entries = Vec::new();
        if readable >= OBJECT_HEADER {
            let mut image = vec![0u8; readable];
            match backend.read(region, 0, &mut image, t) {
                Ok(done) => {
                    t = done;
                    entries = scan_region(&cache, region, &image);
                }
                Err(_) => {
                    // Unreadable region: recover nothing from it.
                }
            }
        }
        recovered += entries.len() as u64;
        let live = entries.len() as u32;
        let sealed = !entries.is_empty();
        let seal_seq = if sealed {
            next_seal_seq += 1;
            next_seal_seq - 1
        } else {
            0
        };
        region_tables.push((r, entries, live, 0u64, sealed, seal_seq));
    }
    cache.region_restore(region_tables)?;
    cache.metrics_internal().scan_recovered_objects.add(recovered);
    Ok(cache)
}

/// Parses one region image, inserting valid objects into the cache index.
/// Returns the region's `(hash, offset)` table.
fn scan_region(cache: &LogCache, region: RegionId, image: &[u8]) -> Vec<(u64, u32)> {
    let mut entries = Vec::new();
    let mut off = 0usize;
    while off + OBJECT_HEADER <= image.len() {
        let key_len = u16::from_le_bytes([image[off], image[off + 1]]) as usize;
        if key_len == 0 {
            break; // flush padding: end of the region's log
        }
        let value_len = u32::from_le_bytes([
            image[off + 4],
            image[off + 5],
            image[off + 6],
            image[off + 7],
        ]) as usize;
        let crc_base = off + HEADER_CRC_OFFSET;
        let stored_crc = u32::from_le_bytes([
            image[crc_base],
            image[crc_base + 1],
            image[crc_base + 2],
            image[crc_base + 3],
        ]);
        let end = off + OBJECT_HEADER + key_len + value_len;
        if end > image.len() {
            break; // truncated tail (torn write)
        }
        let key = &image[off + OBJECT_HEADER..off + OBJECT_HEADER + key_len];
        let payload = &image[off + OBJECT_HEADER..end];
        if crc32(payload) != stored_crc {
            break; // corrupt or torn: nothing after this point is trusted
        }
        let hash = hash_key(key);
        cache.index().insert(
            hash,
            IndexEntry {
                region,
                offset: off as u32,
                key_len: key_len as u16,
                value_len: value_len as u32,
                fingerprint: fingerprint(key),
                // TTLs are DRAM-only state; a scanned object never expires.
                expiry: Nanos::MAX,
                accessed: false,
            },
        );
        entries.push((hash, off as u32));
        off = end;
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BlockBackend;
    use sim::{RamDisk, BLOCK_SIZE};

    fn backend() -> Arc<BlockBackend> {
        Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ))
    }

    #[test]
    fn warm_restart_preserves_contents() {
        let be = backend();
        let cache = LogCache::new(be.clone(), CacheConfig::small_test()).unwrap();
        let mut t = Nanos::ZERO;
        for i in 0..50 {
            let key = format!("key-{i}");
            let value = format!("value-{i}");
            t = cache.set(key.as_bytes(), value.as_bytes(), t).unwrap();
        }
        let (snap, t) = snapshot(&cache, t).unwrap();
        drop(cache);

        let cache2 = recover(be, CacheConfig::small_test(), &snap).unwrap();
        for i in 0..50 {
            let key = format!("key-{i}");
            let (v, _) = cache2.get(key.as_bytes(), t).unwrap();
            assert_eq!(
                v.as_deref(),
                Some(format!("value-{i}").as_bytes()),
                "key-{i} lost across restart"
            );
        }
        // The recovered cache keeps working (evictions included).
        let big = vec![0u8; 8 * 1024];
        let mut t = t;
        for i in 0..64 {
            let key = format!("post-{i}");
            t = cache2.set(key.as_bytes(), &big, t).unwrap();
        }
        assert!(cache2.metrics().evicted_regions > 0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let be = backend();
        let cache = LogCache::new(be, CacheConfig::small_test()).unwrap();
        let (snap, _) = snapshot(&cache, Nanos::ZERO).unwrap();
        // Different region size.
        let other = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            8 * BLOCK_SIZE,
        ));
        assert!(matches!(
            recover(other, CacheConfig::small_test(), &snap),
            Err(CacheError::BadSnapshot(_))
        ));
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let be = backend();
        let cache = LogCache::new(be.clone(), CacheConfig::small_test()).unwrap();
        cache.set(b"k", b"v", Nanos::ZERO).unwrap();
        let (snap, _) = snapshot(&cache, Nanos::ZERO).unwrap();
        for cut in [0, 10, snap.len() / 2] {
            assert!(
                recover(be.clone(), CacheConfig::small_test(), &snap[..cut]).is_err(),
                "accepted cut at {cut}"
            );
        }
    }

    #[test]
    fn garbage_rejected() {
        let be = backend();
        assert!(matches!(
            recover(be, CacheConfig::small_test(), &[0u8; 64]),
            Err(CacheError::BadSnapshot(_))
        ));
    }

    #[test]
    fn snapshot_bit_flip_detected_by_checksum() {
        let be = backend();
        let cache = LogCache::new(be.clone(), CacheConfig::small_test()).unwrap();
        cache.set(b"k", b"v", Nanos::ZERO).unwrap();
        let (mut snap, _) = snapshot(&cache, Nanos::ZERO).unwrap();
        let mid = snap.len() / 2;
        snap[mid] ^= 0x40;
        let err = recover(be, CacheConfig::small_test(), &snap).unwrap_err();
        assert!(matches!(err, CacheError::BadSnapshot(ref m) if m.contains("checksum")), "{err}");
    }

    #[test]
    fn scan_rebuild_serves_flushed_objects_without_snapshot() {
        let be = backend();
        let cache = LogCache::new(be.clone(), CacheConfig::small_test()).unwrap();
        let mut t = Nanos::ZERO;
        for i in 0..20 {
            let key = format!("key-{i}");
            let value = format!("value-{i}");
            t = cache.set(key.as_bytes(), value.as_bytes(), t).unwrap();
        }
        t = cache.flush(t).unwrap();
        // Crash: no snapshot survives. The device keeps its contents.
        drop(cache);
        let cache2 = recover_or_scan(be, CacheConfig::small_test(), None, t).unwrap();
        for i in 0..20 {
            let key = format!("key-{i}");
            let (v, t2) = cache2.get(key.as_bytes(), t).unwrap();
            t = t2;
            assert_eq!(
                v.as_deref(),
                Some(format!("value-{i}").as_bytes()),
                "key-{i} lost without snapshot"
            );
        }
        assert_eq!(cache2.metrics().scan_recovered_objects, 20);
        // The rebuilt cache keeps accepting writes.
        cache2.set(b"post", b"crash", t).unwrap();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_scan() {
        let be = backend();
        let cache = LogCache::new(be.clone(), CacheConfig::small_test()).unwrap();
        let t = cache.set(b"durable", b"yes", Nanos::ZERO).unwrap();
        let (mut snap, t) = snapshot(&cache, t).unwrap();
        snap.truncate(snap.len() / 3); // torn snapshot write
        drop(cache);
        let cache2 = recover_or_scan(be, CacheConfig::small_test(), Some(&snap), t).unwrap();
        let (v, _) = cache2.get(b"durable", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"yes"[..]));
        assert!(cache2.metrics().scan_recovered_objects >= 1);
    }

    #[test]
    fn scan_stops_at_corrupt_object_but_keeps_prefix() {
        let be = backend();
        let cache = LogCache::new(be.clone(), CacheConfig::small_test()).unwrap();
        let mut t = Nanos::ZERO;
        for i in 0..4 {
            let key = format!("k{i}");
            t = cache.set(key.as_bytes(), b"val", t).unwrap();
        }
        t = cache.flush(t).unwrap();
        drop(cache);
        // Corrupt the third object's value on the media: read the region
        // image, flip a byte, write it back through a fresh device view.
        // Easier here: corrupt via a second cache write is impossible
        // (regions are write-once per flush), so flip a bit in RAM directly
        // using the block device under the backend.
        // Object layout: four objects of 12 + 2 + 3 = 17 bytes each.
        let mut block = vec![0u8; 4096];
        be.read(RegionId(0), 0, &mut block, t).unwrap();
        // Corrupt inside the third object's value (offset 2*17 + 14).
        let target = 2 * 17 + 14;
        block[target] ^= 0xFF;
        // No general rewrite path exists; emulate by scanning the damaged
        // image directly.
        let cache2 = LogCache::new(be, CacheConfig::small_test()).unwrap();
        let entries = scan_region(&cache2, RegionId(0), &block);
        assert_eq!(entries.len(), 2, "scan should stop at the corrupt third object");
    }
}
