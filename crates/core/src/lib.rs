//! `zns-cache`: a log-structured persistent cache for ZNS SSDs.
//!
//! This crate is the reproduction of the paper's subject system: a
//! CacheLib-style flash cache (DRAM index + region-packed flash log,
//! region-granular eviction) that can run on four different storage
//! arrangements — the paper's three ZNS schemes plus the regular-SSD
//! baseline (Fig. 1):
//!
//! | Scheme | Backend | Paper section |
//! |--------|---------|---------------|
//! | Block-Cache  | [`backend::BlockBackend`] over an FTL SSD          | baseline |
//! | File-Cache   | [`backend::FileBackend`] over `f2fs-lite`          | §3.1 |
//! | Zone-Cache   | [`backend::ZoneBackend`], region == zone           | §3.2 |
//! | Region-Cache | [`backend::MiddleLayerBackend`], region → zone map | §3.3 |
//!
//! The engine ([`LogCache`]) is shared by all four: objects are packed into
//! an in-memory region buffer; full buffers are flushed to a region slot on
//! the backend; when no slot is free the least-recently-used region is
//! evicted wholesale (its index entries dropped, its storage discarded) —
//! the design CacheLib uses to amortize flash-cache churn (§2.1).
//!
//! The Region-Cache middle layer also implements the paper's §3.4
//! *co-design* discussion: its zone GC can consult cache-temperature hints
//! and drop cold regions instead of migrating them
//! ([`backend::GcMode::Hinted`]), trading a bounded hit-ratio loss for
//! write amplification ≈ 1.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use zns_cache::{CacheConfig, LogCache};
//! use zns_cache::backend::ZoneBackend;
//! use zns::{ZnsConfig, ZnsDevice};
//! use sim::Nanos;
//!
//! let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
//! let backend = Arc::new(ZoneBackend::new(dev));
//! let cache = LogCache::new(backend, CacheConfig::small_test()).unwrap();
//!
//! let t = cache.set(b"key", b"value", Nanos::ZERO).unwrap();
//! let (hit, _t) = cache.get(b"key", t).unwrap();
//! assert_eq!(hit.as_deref(), Some(&b"value"[..]));
//! ```

// The unsafe core (engine::RegionBuffer) is held to an explicit-contract
// standard: every unsafe operation sits in its own `unsafe` block inside
// `unsafe fn`s, and every block carries a `// SAFETY:` justification.
// Checked by Miri (scripts/miri.sh) and by clippy respectively.
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::undocumented_unsafe_blocks)]

pub mod backend;
pub mod bighash;
pub mod bloom_filter;
pub mod dram;
pub mod engine;
pub mod index;
pub mod io;
pub mod maintainer;
pub mod metrics;
pub mod policy;
pub mod protocol;
pub mod recovery;
pub mod scheme;
pub mod sync;
pub mod trace;
pub mod types;

pub use bighash::{BigHash, HybridEngine};
pub use engine::{CacheConfig, LogCache, RetryPolicy, ScrubReport};
pub use maintainer::{Maintainer, MaintainerHandle};
pub use metrics::CacheMetricsSnapshot;
pub use policy::{Admission, EvictionPolicy};
pub use scheme::{Scheme, SchemeCache};
pub use types::{CacheError, RegionId};
