//! Synchronization facade: std/`parking_lot` in production builds, the
//! `loom` model checker under `RUSTFLAGS="--cfg loom"`.
//!
//! Everything in [`crate::protocol`] (the engine's extracted lock-free
//! protocols) imports its primitives from here and from nowhere else, so
//! the exact code that runs in production is the code the loom suite
//! (`tests/loom.rs`) model-checks exhaustively. The engine itself also
//! routes through this facade; it is only ever *executed* in the
//! production configuration (loom primitives panic outside
//! `loom::model`), but compiling it under both cfgs keeps the facade
//! honest.
//!
//! `cfg(loom)` is a compile-time switch, not a feature: the loom build
//! never ships, and the production build contains zero model-checking
//! overhead — the facade re-exports resolve to the real types.

#[cfg(loom)]
pub use loom_facade::*;
#[cfg(not(loom))]
pub use std_facade::*;

#[cfg(not(loom))]
mod std_facade {
    pub use parking_lot::{Mutex, RwLock};
    pub use std::hint::spin_loop;
    pub use std::sync::Arc;

    pub mod atomic {
        pub use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }
}

#[cfg(loom)]
mod loom_facade {
    pub use loom::hint::spin_loop;
    pub use loom::sync::{Arc, Mutex, RwLock};

    pub mod atomic {
        pub use loom::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
    }
}
