//! Scheme constructors: one per arrangement in the paper's Fig. 1.
//!
//! [`SchemeCache`] bundles a [`LogCache`] with handles to the devices
//! underneath it so experiments can report both cache-level metrics (hit
//! ratio, throughput) and device-level ones (write amplification, resets,
//! GC activity) for any scheme through one interface.

use std::sync::Arc;

use f2fs_lite::FileSystem;
use ftl::BlockSsd;
use serde::{Deserialize, Serialize};
use sim::Nanos;
use zns::ZnsDevice;

use crate::backend::{
    BlockBackend, FileBackend, MiddleConfig, MiddleLayerBackend, ZoneBackend,
};
use crate::engine::{CacheConfig, LogCache};
use crate::types::CacheError;

/// The four schemes of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// CacheLib on a regular (FTL) SSD — the baseline.
    Block,
    /// CacheLib on a file in a ZNS-compatible filesystem (§3.1).
    File,
    /// Region == zone (§3.2).
    Zone,
    /// Middle layer translating regions to zones (§3.3).
    Region,
}

impl Scheme {
    /// Human-readable scheme name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Block => "Block-Cache",
            Scheme::File => "File-Cache",
            Scheme::Zone => "Zone-Cache",
            Scheme::Region => "Region-Cache",
        }
    }

    /// All schemes, in the paper's presentation order.
    pub const ALL: [Scheme; 4] = [Scheme::Region, Scheme::Zone, Scheme::File, Scheme::Block];
}

impl core::fmt::Display for Scheme {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A cache plus the device stack beneath it.
pub struct SchemeCache {
    /// Which scheme this is.
    pub scheme: Scheme,
    /// The cache engine.
    pub cache: Arc<LogCache>,
    /// ZNS device (File/Zone/Region schemes).
    pub zns: Option<Arc<ZnsDevice>>,
    /// Conventional SSD (Block scheme).
    pub ftl: Option<Arc<BlockSsd>>,
    /// Filesystem (File scheme).
    pub fs: Option<Arc<FileSystem>>,
    /// Middle layer (Region scheme).
    pub middle: Option<Arc<MiddleLayerBackend>>,
}

impl core::fmt::Debug for SchemeCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SchemeCache")
            .field("scheme", &self.scheme)
            .field("metrics", &self.cache.metrics())
            .finish()
    }
}

impl SchemeCache {
    /// Block-Cache: regions straight onto a conventional SSD.
    ///
    /// `num_regions` optionally caps capacity below the device's natural
    /// fit (for capacity-matched comparisons).
    ///
    /// # Errors
    ///
    /// [`CacheError::BackendTooSmall`] for under-sized devices.
    pub fn block(
        dev: Arc<BlockSsd>,
        region_size: usize,
        num_regions: Option<u32>,
        config: CacheConfig,
    ) -> Result<Self, CacheError> {
        let stats_dev = dev.clone();
        let mut backend = BlockBackend::new(dev.clone(), region_size)
            .with_media_counter(move || stats_dev.stats().media_bytes_written);
        if let Some(n) = num_regions {
            backend = backend.with_region_limit(n);
        }
        let cache = Arc::new(LogCache::new(Arc::new(backend), config)?);
        Ok(SchemeCache {
            scheme: Scheme::Block,
            cache,
            zns: None,
            ftl: Some(dev),
            fs: None,
            middle: None,
        })
    }

    /// File-Cache: regions in one big file on `f2fs-lite`.
    ///
    /// # Errors
    ///
    /// [`CacheError::Io`] when the filesystem cannot hold the cache.
    pub fn file(
        fs: Arc<FileSystem>,
        region_size: usize,
        num_regions: u32,
        config: CacheConfig,
        now: Nanos,
    ) -> Result<Self, CacheError> {
        Self::file_inner(fs, region_size, num_regions, config, now, false)
    }

    /// File-Cache with hole punching on eviction: evicted regions are
    /// deallocated eagerly so the filesystem cleaner reclaims them without
    /// migration (see `FileBackend::with_punch_on_discard`).
    ///
    /// # Errors
    ///
    /// As [`SchemeCache::file`].
    pub fn file_with_punch(
        fs: Arc<FileSystem>,
        region_size: usize,
        num_regions: u32,
        config: CacheConfig,
        now: Nanos,
    ) -> Result<Self, CacheError> {
        Self::file_inner(fs, region_size, num_regions, config, now, true)
    }

    fn file_inner(
        fs: Arc<FileSystem>,
        region_size: usize,
        num_regions: u32,
        config: CacheConfig,
        now: Nanos,
        punch: bool,
    ) -> Result<Self, CacheError> {
        let backend = FileBackend::create(fs.clone(), "cachelib.data", region_size, num_regions, now)?
            .with_punch_on_discard(punch);
        let zns = fs.device();
        let cache = Arc::new(LogCache::new(Arc::new(backend), config)?);
        Ok(SchemeCache {
            scheme: Scheme::File,
            cache,
            zns: Some(zns),
            ftl: None,
            fs: Some(fs),
            middle: None,
        })
    }

    /// Zone-Cache: one region per zone.
    ///
    /// # Errors
    ///
    /// [`CacheError::BackendTooSmall`] when fewer than 3 zones are usable.
    pub fn zone(
        dev: Arc<ZnsDevice>,
        zone_limit: Option<u32>,
        config: CacheConfig,
    ) -> Result<Self, CacheError> {
        Self::zone_with_append_depth(dev, zone_limit, crate::backend::DEFAULT_APPEND_DEPTH, config)
    }

    /// Zone-Cache with an explicit zone-append queue depth for region
    /// flushes (see `ZoneBackend::with_append_depth`).
    ///
    /// # Errors
    ///
    /// As [`SchemeCache::zone`].
    pub fn zone_with_append_depth(
        dev: Arc<ZnsDevice>,
        zone_limit: Option<u32>,
        append_depth: usize,
        config: CacheConfig,
    ) -> Result<Self, CacheError> {
        let mut backend = ZoneBackend::new(dev.clone()).with_append_depth(append_depth);
        if let Some(n) = zone_limit {
            backend = backend.with_zone_limit(n);
        }
        let cache = Arc::new(LogCache::new(Arc::new(backend), config)?);
        Ok(SchemeCache {
            scheme: Scheme::Zone,
            cache,
            zns: Some(dev),
            ftl: None,
            fs: None,
            middle: None,
        })
    }

    /// Region-Cache: the middle layer.
    ///
    /// # Errors
    ///
    /// [`CacheError::BackendTooSmall`] for under-provisioned layouts.
    pub fn region(
        dev: Arc<ZnsDevice>,
        middle: MiddleConfig,
        config: CacheConfig,
    ) -> Result<Self, CacheError> {
        let backend = Arc::new(MiddleLayerBackend::new(dev.clone(), middle));
        let cache = Arc::new(LogCache::new(backend.clone(), config)?);
        Ok(SchemeCache {
            scheme: Scheme::Region,
            cache,
            zns: Some(dev),
            ftl: None,
            fs: None,
            middle: Some(backend),
        })
    }

    /// End-to-end write amplification: all media writes / cache flushes.
    pub fn write_amplification(&self) -> f64 {
        self.cache.write_amplification()
    }

    /// Device-level media bytes written (flash programs).
    pub fn media_bytes(&self) -> u64 {
        self.cache.backend().media_bytes_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftl::FtlConfig;
    use f2fs_lite::FsConfig;
    use sim::BLOCK_SIZE;
    use zns::ZnsConfig;

    fn run_mixed_workload(sc: &SchemeCache) {
        let mut t = Nanos::ZERO;
        let value = vec![3u8; 700];
        for i in 0..400u32 {
            let key = format!("key-{:04}", i % 120);
            match i % 10 {
                0..=4 => {
                    let (_, t2) = sc.cache.get(key.as_bytes(), t).unwrap();
                    t = t2;
                }
                5..=7 => t = sc.cache.set(key.as_bytes(), &value, t).unwrap(),
                _ => t = sc.cache.delete(key.as_bytes(), t).unwrap().1,
            }
        }
        let m = sc.cache.metrics();
        assert!(m.sets > 0 && m.gets > 0);
        assert!(sc.write_amplification() >= 1.0);
    }

    #[test]
    fn block_scheme_end_to_end() {
        let dev = Arc::new(BlockSsd::new(FtlConfig::small_test()));
        let sc =
            SchemeCache::block(dev, 4 * BLOCK_SIZE, None, CacheConfig::small_test()).unwrap();
        assert_eq!(sc.scheme.label(), "Block-Cache");
        run_mixed_workload(&sc);
        assert!(sc.ftl.is_some());
    }

    #[test]
    fn file_scheme_end_to_end() {
        let fs = Arc::new(FileSystem::format(FsConfig::small_test()));
        let sc = SchemeCache::file(
            fs,
            4 * BLOCK_SIZE,
            24,
            CacheConfig::small_test(),
            Nanos::ZERO,
        )
        .unwrap();
        run_mixed_workload(&sc);
        assert!(sc.fs.is_some() && sc.zns.is_some());
    }

    #[test]
    fn zone_scheme_end_to_end() {
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let sc = SchemeCache::zone(dev, None, CacheConfig::small_test()).unwrap();
        run_mixed_workload(&sc);
        // Zero WA by construction.
        assert_eq!(sc.write_amplification(), 1.0);
    }

    #[test]
    fn region_scheme_end_to_end() {
        let dev = Arc::new(ZnsDevice::new(ZnsConfig::small_test()));
        let sc = SchemeCache::region(
            dev,
            crate::backend::MiddleConfig::small_test(),
            CacheConfig::small_test(),
        )
        .unwrap();
        run_mixed_workload(&sc);
        assert!(sc.middle.is_some());
    }

    #[test]
    fn scheme_display_and_all() {
        assert_eq!(Scheme::ALL.len(), 4);
        assert_eq!(Scheme::Zone.to_string(), "Zone-Cache");
    }
}
