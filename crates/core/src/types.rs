//! Identifiers and the cache error type.

use core::fmt;

use serde::{Deserialize, Serialize};

/// A region slot index on the backend.
///
/// Regions are the cache's on-flash management unit (16 MiB in CacheLib's
/// default configuration, one whole zone in Zone-Cache).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct RegionId(pub u32);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region:{}", self.0)
    }
}

/// Errors returned by the cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// Object (key + value + header) exceeds the region size.
    ObjectTooLarge {
        /// Total serialized size.
        size: usize,
        /// Region capacity.
        region_size: usize,
    },
    /// Key length exceeds the format limit (64 KiB).
    KeyTooLarge {
        /// Offending length.
        len: usize,
    },
    /// The backend cannot host even one region.
    BackendTooSmall,
    /// A recovery snapshot did not match the backend/configuration.
    BadSnapshot(String),
    /// An on-flash object failed its checksum: the bytes read back do not
    /// match what was written. The engine treats this as a miss and
    /// invalidates the entry.
    Corrupt {
        /// Region holding the damaged object.
        region: RegionId,
        /// Byte offset of the object header within the region.
        offset: u32,
    },
    /// An internal invariant was violated (a bug in the engine, surfaced
    /// as an error instead of a panic so callers can keep serving).
    Internal(String),
    /// Error propagated from the storage backend.
    Io(String),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::ObjectTooLarge { size, region_size } => {
                write!(f, "object of {size} bytes exceeds region size {region_size}")
            }
            CacheError::KeyTooLarge { len } => write!(f, "key of {len} bytes too large"),
            CacheError::BackendTooSmall => f.write_str("backend has no region capacity"),
            CacheError::BadSnapshot(msg) => write!(f, "bad recovery snapshot: {msg}"),
            CacheError::Corrupt { region, offset } => {
                write!(f, "corrupt object at {region} offset {offset}")
            }
            CacheError::Internal(msg) => write!(f, "internal cache invariant violated: {msg}"),
            CacheError::Io(msg) => write!(f, "backend I/O error: {msg}"),
        }
    }
}

impl std::error::Error for CacheError {}

impl From<sim::IoError> for CacheError {
    fn from(err: sim::IoError) -> Self {
        CacheError::Io(err.to_string())
    }
}

impl From<zns::ZnsError> for CacheError {
    fn from(err: zns::ZnsError) -> Self {
        CacheError::Io(err.to_string())
    }
}

impl From<f2fs_lite::FsError> for CacheError {
    fn from(err: f2fs_lite::FsError) -> Self {
        CacheError::Io(err.to_string())
    }
}

/// Hashes a key to the cache's canonical 64-bit identity (FNV-1a).
///
/// # Example
///
/// ```
/// let a = zns_cache::types::hash_key(b"hello");
/// let b = zns_cache::types::hash_key(b"hello");
/// assert_eq!(a, b);
/// assert_ne!(a, zns_cache::types::hash_key(b"world"));
/// ```
pub fn hash_key(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Secondary 32-bit fingerprint used to reject most index collisions
/// without touching flash.
pub fn fingerprint(key: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in key.iter().rev() {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(RegionId(7).to_string(), "region:7");
        assert!(CacheError::BackendTooSmall.to_string().contains("region"));
    }

    #[test]
    fn hashes_are_stable_and_distinct() {
        assert_eq!(hash_key(b"abc"), hash_key(b"abc"));
        assert_ne!(hash_key(b"abc"), hash_key(b"abd"));
        assert_ne!(fingerprint(b"abc"), fingerprint(b"abd"));
        // The two hashes are independent: a 64-bit collision would still
        // usually differ in fingerprint. Spot check a pair of values.
        assert_ne!(hash_key(b"abc") as u32, fingerprint(b"abc"));
    }

    #[test]
    fn error_conversion_keeps_message() {
        let e: CacheError = sim::IoError::NoSpace.into();
        assert!(e.to_string().contains("space"));
    }
}
