//! A tiny insertable bloom filter, one per BigHash bucket.
//!
//! 256 bits / 4 hashes ≈ 2% false positives at the ~30 entries a 4 KiB
//! bucket of ~100-byte objects holds — the DRAM cost (32 B/bucket) that
//! lets BigHash answer most misses without a flash read.

/// A fixed 256-bit bloom filter supporting inserts (rebuilt wholesale when
/// its bucket is rewritten, so no deletes are needed).
///
/// # Example
///
/// ```
/// use zns_cache::bloom_filter::PageBloom;
///
/// let mut bloom = PageBloom::new();
/// bloom.insert(b"present");
/// assert!(bloom.may_contain(b"present"));
/// assert!(!bloom.may_contain(b"definitely-absent-key"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageBloom {
    bits: [u64; 4],
}

fn hash2(key: &[u8]) -> (u64, u64) {
    let (mut a, mut b) = (0xcbf2_9ce4_8422_2325u64, 0x0100_0000_01b3_u64 | 1);
    for &byte in key {
        a = (a ^ byte as u64).wrapping_mul(0x1_0000_01b3);
        b = b.wrapping_add(a).rotate_left(23) ^ (byte as u64);
    }
    (a, b | 1)
}

impl PageBloom {
    /// Creates an empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = hash2(key);
        for i in 0..4u64 {
            let bit = h1.wrapping_add(h2.wrapping_mul(i)) % 256;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Whether the key might have been inserted (no false negatives).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = hash2(key);
        (0..4u64).all(|i| {
            let bit = h1.wrapping_add(h2.wrapping_mul(i)) % 256;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Clears the filter.
    pub fn clear(&mut self) {
        self.bits = [0; 4];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = PageBloom::new();
        let keys: Vec<String> = (0..30).map(|i| format!("key-{i}")).collect();
        for k in &keys {
            b.insert(k.as_bytes());
        }
        for k in &keys {
            assert!(b.may_contain(k.as_bytes()), "false negative for {k}");
        }
    }

    #[test]
    fn false_positives_are_rare_at_bucket_load() {
        let mut b = PageBloom::new();
        for i in 0..30 {
            b.insert(format!("in-{i}").as_bytes());
        }
        let fp = (0..1000)
            .filter(|i| b.may_contain(format!("out-{i}").as_bytes()))
            .count();
        assert!(fp < 100, "false positive rate too high: {fp}/1000");
    }

    #[test]
    fn clear_resets() {
        let mut b = PageBloom::new();
        b.insert(b"x");
        b.clear();
        assert!(!b.may_contain(b"x"));
    }
}
