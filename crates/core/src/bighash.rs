//! BigHash: the small-object flash engine.
//!
//! CacheLib's Navy layer is two engines, not one: the log-structured
//! region engine this crate centres on (the paper's subject), and
//! **BigHash** — a set-associative layout for tiny objects whose per-item
//! index cost would otherwise dwarf them (the Kangaroo line of work the
//! paper cites [27]). BigHash divides flash into 4 KiB *buckets*; a key
//! hashes to exactly one bucket, which is read-modified-written in place.
//! A per-bucket DRAM bloom filter short-circuits misses without touching
//! flash.
//!
//! In-place 4 KiB rewrites require a block interface, so BigHash runs on
//! the conventional-SSD side (or behind the Region-Cache middle layer's
//! block emulation) — precisely why the paper's ZNS adaptation concerns
//! the region engine. The [`HybridEngine`] routes objects by size:
//! small → BigHash, large → the log-structured cache.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes};
use parking_lot::Mutex;
use sim::{BlockDevice, Counter, Lba, Nanos, BLOCK_SIZE};

use crate::bloom_filter::PageBloom;
use crate::engine::LogCache;
use crate::types::{hash_key, CacheError};

/// Per-entry header inside a bucket: key length + value length.
const ENTRY_HEADER: usize = 4;
/// Per-bucket header: entry count.
const BUCKET_HEADER: usize = 4;

/// Statistics snapshot for a [`BigHash`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BigHashStatsSnapshot {
    /// Lookups.
    pub gets: u64,
    /// Lookups served from flash.
    pub hits: u64,
    /// Lookups rejected by the bloom filter (no flash read).
    pub bloom_rejects: u64,
    /// Inserts.
    pub sets: u64,
    /// Entries evicted to make room inside their bucket (FIFO).
    pub bucket_evictions: u64,
    /// Deletes that removed an entry.
    pub deletes: u64,
}

impl BigHashStatsSnapshot {
    /// Hit ratio over all lookups.
    pub fn hit_ratio(&self) -> f64 {
        if self.gets == 0 {
            1.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }
}

/// A set-associative small-object cache over a block device region
/// `[first_block, first_block + num_buckets)`.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use sim::{Lba, Nanos, RamDisk};
/// use zns_cache::bighash::BigHash;
///
/// let dev = Arc::new(RamDisk::new(16));
/// let cache = BigHash::new(dev, Lba(0), 16).unwrap();
/// let t = cache.set(b"k", b"v", Nanos::ZERO)?;
/// assert_eq!(cache.get(b"k", t)?.0.as_deref(), Some(&b"v"[..]));
/// # Ok::<(), zns_cache::CacheError>(())
/// ```
pub struct BigHash {
    dev: Arc<dyn BlockDevice>,
    first_block: u64,
    num_buckets: u64,
    blooms: Vec<Mutex<PageBloom>>,
    gets: Counter,
    hits: Counter,
    bloom_rejects: Counter,
    sets: Counter,
    bucket_evictions: Counter,
    deletes: Counter,
}

impl core::fmt::Debug for BigHash {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("BigHash")
            .field("buckets", &self.num_buckets)
            .field("stats", &self.stats())
            .finish()
    }
}

impl BigHash {
    /// Creates the engine over `num_buckets` 4 KiB buckets starting at
    /// `first_block`.
    ///
    /// # Errors
    ///
    /// [`CacheError::BackendTooSmall`] when the range does not fit the
    /// device or is empty.
    pub fn new(
        dev: Arc<dyn BlockDevice>,
        first_block: Lba,
        num_buckets: u64,
    ) -> Result<Self, CacheError> {
        if num_buckets == 0 || first_block.0 + num_buckets > dev.block_count() {
            return Err(CacheError::BackendTooSmall);
        }
        Ok(BigHash {
            dev,
            first_block: first_block.0,
            num_buckets,
            blooms: (0..num_buckets).map(|_| Mutex::new(PageBloom::new())).collect(),
            gets: Counter::new(),
            hits: Counter::new(),
            bloom_rejects: Counter::new(),
            sets: Counter::new(),
            bucket_evictions: Counter::new(),
            deletes: Counter::new(),
        })
    }

    /// Statistics so far.
    pub fn stats(&self) -> BigHashStatsSnapshot {
        BigHashStatsSnapshot {
            gets: self.gets.get(),
            hits: self.hits.get(),
            bloom_rejects: self.bloom_rejects.get(),
            sets: self.sets.get(),
            bucket_evictions: self.bucket_evictions.get(),
            deletes: self.deletes.get(),
        }
    }

    /// Largest object (key + value) one bucket can hold.
    pub fn max_object_size() -> usize {
        BLOCK_SIZE - BUCKET_HEADER - ENTRY_HEADER
    }

    fn bucket_of(&self, key: &[u8]) -> u64 {
        // Independent of the region engine's hash use (different mixer).
        hash_key(key).rotate_left(17) % self.num_buckets
    }

    fn lba_of(&self, bucket: u64) -> Lba {
        Lba(self.first_block + bucket)
    }

    /// Decodes a bucket page into (key, value) pairs, oldest first.
    fn decode(page: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut buf = page;
        if buf.remaining() < BUCKET_HEADER {
            return Vec::new();
        }
        let count = buf.get_u32_le() as usize;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < ENTRY_HEADER {
                break;
            }
            let klen = buf.get_u16_le() as usize;
            let vlen = buf.get_u16_le() as usize;
            if buf.remaining() < klen + vlen {
                break;
            }
            let key = buf[..klen].to_vec();
            buf.advance(klen);
            let value = buf[..vlen].to_vec();
            buf.advance(vlen);
            out.push((key, value));
        }
        out
    }

    /// Encodes entries into a 4 KiB page, evicting the oldest entries that
    /// do not fit (FIFO within the bucket). Returns (page, evicted_count).
    fn encode(entries: &[(Vec<u8>, Vec<u8>)]) -> (Vec<u8>, u64) {
        // Walk from the newest backwards, keeping what fits.
        let mut kept: Vec<&(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut used = BUCKET_HEADER;
        let mut evicted = 0u64;
        for entry in entries.iter().rev() {
            let need = ENTRY_HEADER + entry.0.len() + entry.1.len();
            if used + need <= BLOCK_SIZE {
                used += need;
                kept.push(entry);
            } else {
                evicted += 1;
            }
        }
        kept.reverse(); // restore oldest-first order
        let mut page = Vec::with_capacity(BLOCK_SIZE);
        page.put_u32_le(kept.len() as u32);
        for (key, value) in kept {
            page.put_u16_le(key.len() as u16);
            page.put_u16_le(value.len() as u16);
            page.put_slice(key);
            page.put_slice(value);
        }
        page.resize(BLOCK_SIZE, 0);
        (page, evicted)
    }

    fn rebuild_bloom(&self, bucket: u64, entries: &[(Vec<u8>, Vec<u8>)]) {
        let mut bloom = PageBloom::new();
        for (key, _) in entries {
            bloom.insert(key);
        }
        *self.blooms[bucket as usize].lock() = bloom;
    }

    /// Inserts a small object (read-modify-write of its bucket).
    ///
    /// # Errors
    ///
    /// [`CacheError::ObjectTooLarge`] past [`BigHash::max_object_size`];
    /// device failures.
    pub fn set(&self, key: &[u8], value: &[u8], now: Nanos) -> Result<Nanos, CacheError> {
        if ENTRY_HEADER + key.len() + value.len() > BLOCK_SIZE - BUCKET_HEADER {
            return Err(CacheError::ObjectTooLarge {
                size: key.len() + value.len(),
                region_size: Self::max_object_size(),
            });
        }
        let bucket = self.bucket_of(key);
        let mut page = vec![0u8; BLOCK_SIZE];
        let t = self.dev.read(self.lba_of(bucket), &mut page, now)?;
        let mut entries = Self::decode(&page);
        entries.retain(|(k, _)| k != key);
        entries.push((key.to_vec(), value.to_vec()));
        let (page, evicted) = Self::encode(&entries);
        let t = self.dev.write(self.lba_of(bucket), &page, t)?;
        // The bloom reflects what survived encoding.
        let survived = Self::decode(&page);
        self.rebuild_bloom(bucket, &survived);
        self.bucket_evictions.add(evicted);
        self.sets.incr();
        Ok(t)
    }

    /// Looks up a small object.
    ///
    /// # Errors
    ///
    /// Device failures.
    pub fn get(&self, key: &[u8], now: Nanos) -> Result<(Option<Bytes>, Nanos), CacheError> {
        self.gets.incr();
        let bucket = self.bucket_of(key);
        if !self.blooms[bucket as usize].lock().may_contain(key) {
            self.bloom_rejects.incr();
            return Ok((None, now + Nanos::from_nanos(300)));
        }
        let mut page = vec![0u8; BLOCK_SIZE];
        let t = self.dev.read(self.lba_of(bucket), &mut page, now)?;
        for (k, v) in Self::decode(&page) {
            if k == key {
                self.hits.incr();
                return Ok((Some(Bytes::from(v)), t));
            }
        }
        Ok((None, t))
    }

    /// Deletes a small object. Returns whether it existed.
    ///
    /// # Errors
    ///
    /// Device failures.
    pub fn delete(&self, key: &[u8], now: Nanos) -> Result<(bool, Nanos), CacheError> {
        let bucket = self.bucket_of(key);
        if !self.blooms[bucket as usize].lock().may_contain(key) {
            return Ok((false, now + Nanos::from_nanos(300)));
        }
        let mut page = vec![0u8; BLOCK_SIZE];
        let t = self.dev.read(self.lba_of(bucket), &mut page, now)?;
        let mut entries = Self::decode(&page);
        let before = entries.len();
        entries.retain(|(k, _)| k != key);
        if entries.len() == before {
            return Ok((false, t));
        }
        let (page, _) = Self::encode(&entries);
        let t = self.dev.write(self.lba_of(bucket), &page, t)?;
        self.rebuild_bloom(bucket, &entries);
        self.deletes.incr();
        Ok((true, t))
    }
}

/// Routes objects by size: small ones to [`BigHash`], the rest to the
/// log-structured [`LogCache`] — Navy's two-engine architecture.
pub struct HybridEngine {
    small: BigHash,
    large: Arc<LogCache>,
    /// Objects with `key + value` at or below this go to BigHash.
    small_threshold: usize,
}

impl core::fmt::Debug for HybridEngine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HybridEngine")
            .field("small_threshold", &self.small_threshold)
            .field("small", &self.small.stats())
            .finish()
    }
}

impl HybridEngine {
    /// Combines the two engines with a size threshold (CacheLib defaults
    /// to routing sub-KiB objects to BigHash).
    ///
    /// # Panics
    ///
    /// Panics if the threshold exceeds what a bucket can hold.
    pub fn new(small: BigHash, large: Arc<LogCache>, small_threshold: usize) -> Self {
        assert!(
            small_threshold <= BigHash::max_object_size(),
            "threshold exceeds bucket capacity"
        );
        HybridEngine {
            small,
            large,
            small_threshold,
        }
    }

    fn is_small(&self, key: &[u8], value_len: usize) -> bool {
        key.len() + value_len <= self.small_threshold
    }

    /// Inserts, routing by size.
    ///
    /// # Errors
    ///
    /// As the underlying engines.
    pub fn set(&self, key: &[u8], value: &[u8], now: Nanos) -> Result<Nanos, CacheError> {
        if self.is_small(key, value.len()) {
            // The object may previously have been large: remove the stale
            // copy so the two engines never disagree.
            let (_, t) = self.large.delete(key, now)?;
            self.small.set(key, value, t)
        } else {
            let (_, t) = self.small.delete(key, now)?;
            self.large.set(key, value, t)
        }
    }

    /// Looks up in both engines (small first: cheaper on miss).
    ///
    /// # Errors
    ///
    /// As the underlying engines.
    pub fn get(&self, key: &[u8], now: Nanos) -> Result<(Option<Bytes>, Nanos), CacheError> {
        let (found, t) = self.small.get(key, now)?;
        if found.is_some() {
            return Ok((found, t));
        }
        self.large.get(key, t)
    }

    /// Deletes from both engines. Returns whether either held the key.
    ///
    /// # Errors
    ///
    /// As the underlying engines.
    pub fn delete(&self, key: &[u8], now: Nanos) -> Result<(bool, Nanos), CacheError> {
        let (in_small, t) = self.small.delete(key, now)?;
        let (in_large, t) = self.large.delete(key, t)?;
        Ok((in_small || in_large, t))
    }

    /// The small-object engine (for statistics).
    pub fn small(&self) -> &BigHash {
        &self.small
    }

    /// The large-object engine (for statistics).
    pub fn large(&self) -> &Arc<LogCache> {
        &self.large
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BlockBackend;
    use crate::engine::CacheConfig;
    use sim::RamDisk;

    fn bighash(buckets: u64) -> BigHash {
        BigHash::new(Arc::new(RamDisk::new(buckets)), Lba(0), buckets).unwrap()
    }

    #[test]
    fn set_get_delete_round_trip() {
        let c = bighash(8);
        let t = c.set(b"alpha", b"1", Nanos::ZERO).unwrap();
        let t = c.set(b"beta", b"2", t).unwrap();
        let (v, t) = c.get(b"alpha", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"1"[..]));
        let (existed, t) = c.delete(b"alpha", t).unwrap();
        assert!(existed);
        let (v, _) = c.get(b"alpha", t).unwrap();
        assert!(v.is_none());
        let (existed, _) = c.delete(b"alpha", t).unwrap();
        assert!(!existed);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let c = bighash(4);
        let t = c.set(b"k", b"old", Nanos::ZERO).unwrap();
        let t = c.set(b"k", b"new", t).unwrap();
        let (v, _) = c.get(b"k", t).unwrap();
        assert_eq!(v.as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn bloom_short_circuits_misses() {
        let c = bighash(4);
        let t = c.set(b"present", b"v", Nanos::ZERO).unwrap();
        let before = c.stats().bloom_rejects;
        for i in 0..50 {
            let key = format!("absent-{i}");
            let (v, _) = c.get(key.as_bytes(), t).unwrap();
            assert!(v.is_none());
        }
        assert!(
            c.stats().bloom_rejects > before + 30,
            "bloom rarely engaged: {:?}",
            c.stats()
        );
    }

    #[test]
    fn bucket_overflow_evicts_fifo() {
        let c = bighash(1); // force collisions
        let value = vec![7u8; 900];
        let mut t = Nanos::ZERO;
        for i in 0..8 {
            let key = format!("k{i}");
            t = c.set(key.as_bytes(), &value, t).unwrap();
        }
        assert!(c.stats().bucket_evictions > 0);
        // The newest key always survives.
        let (v, _) = c.get(b"k7", t).unwrap();
        assert!(v.is_some(), "newest entry evicted");
        // The oldest is gone.
        let (v, _) = c.get(b"k0", t).unwrap();
        assert!(v.is_none(), "oldest entry survived an overfull bucket");
    }

    #[test]
    fn oversized_object_rejected() {
        let c = bighash(4);
        let huge = vec![0u8; BLOCK_SIZE];
        assert!(matches!(
            c.set(b"k", &huge, Nanos::ZERO),
            Err(CacheError::ObjectTooLarge { .. })
        ));
    }

    #[test]
    fn range_validation() {
        let dev: Arc<dyn BlockDevice> = Arc::new(RamDisk::new(4));
        assert!(BigHash::new(dev.clone(), Lba(0), 5).is_err());
        assert!(BigHash::new(dev.clone(), Lba(4), 1).is_err());
        assert!(BigHash::new(dev, Lba(0), 0).is_err());
    }

    fn hybrid() -> HybridEngine {
        let dev = Arc::new(RamDisk::new(128));
        // Buckets on the first 16 blocks; region engine on the rest.
        let small = BigHash::new(dev.clone(), Lba(0), 16).unwrap();
        let backend = Arc::new(
            BlockBackend::new(dev, 4 * BLOCK_SIZE).with_region_limit(28),
        );
        // Region 0 starts at block 0 — overlap would corrupt BigHash, so
        // use a separate device in real deployments; the test relies on
        // the threshold routing only, not block layout.
        let large = Arc::new(LogCache::new(backend, CacheConfig::small_test()).unwrap());
        HybridEngine::new(small, large, 256)
    }

    #[test]
    fn hybrid_routes_by_size() {
        let h = hybrid();
        let small_value = vec![1u8; 64];
        let large_value = vec![2u8; 2048];
        let t = h.set(b"small", &small_value, Nanos::ZERO).unwrap();
        let t = h.set(b"large", &large_value, t).unwrap();
        assert_eq!(h.small().stats().sets, 1);
        assert_eq!(h.large().metrics().sets, 1);
        let (v, t) = h.get(b"small", t).unwrap();
        assert_eq!(v.as_deref(), Some(&small_value[..]));
        let (v, _) = h.get(b"large", t).unwrap();
        assert_eq!(v.as_deref(), Some(&large_value[..]));
    }

    #[test]
    fn hybrid_size_transition_never_serves_stale() {
        let h = hybrid();
        // Start large, shrink small, grow large again.
        let large1 = vec![1u8; 2048];
        let small = vec![2u8; 64];
        let large2 = vec![3u8; 2048];
        let t = h.set(b"k", &large1, Nanos::ZERO).unwrap();
        let t = h.set(b"k", &small, t).unwrap();
        let (v, t) = h.get(b"k", t).unwrap();
        assert_eq!(v.as_deref(), Some(&small[..]), "stale large copy served");
        let t = h.set(b"k", &large2, t).unwrap();
        let (v, t) = h.get(b"k", t).unwrap();
        assert_eq!(v.as_deref(), Some(&large2[..]), "stale small copy served");
        let (existed, t) = h.delete(b"k", t).unwrap();
        assert!(existed);
        let (v, _) = h.get(b"k", t).unwrap();
        assert!(v.is_none());
    }
}
