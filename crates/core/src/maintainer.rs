//! Background maintenance: keeping the clean-region pool at its watermark.
//!
//! CacheLib's Navy runs region reclamation on dedicated threads so that
//! foreground inserts almost never pay an eviction inline — they pop a
//! pre-cleaned region and move on. [`Maintainer`] reproduces that split:
//!
//! * [`Maintainer::run_once`] performs one maintenance pass at an explicit
//!   simulated timestamp. Tests and simulations call this directly, which
//!   keeps background work **deterministic** — the victim sequence depends
//!   only on cache state, never on thread scheduling.
//! * [`Maintainer::spawn`] starts a real OS thread that periodically runs
//!   the same pass at the engine's observed simulated clock. Benchmarks use
//!   this to overlap reclamation with foreground traffic on real cores.
//!
//! The backpressure contract: the maintainer is an *optimization*, not a
//! correctness requirement. If it falls behind (or is not running), the
//! write path evicts inline under the writer lock and the inserter absorbs
//! the reclamation latency — visible as `inline_evictions` in the metrics
//! versus `maintainer_evictions` for pre-cleaned pools.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sim::Nanos;

use crate::engine::LogCache;
use crate::types::{CacheError, RegionId};

/// Drives [`LogCache::maintain`]: refills the clean-region pool to the
/// configured `clean_region_watermark` by evicting sealed regions, and —
/// when a scrub interval is configured — periodically runs
/// [`LogCache::scrub`] to verify sealed data and salvage live objects
/// off degrading media (DESIGN.md §7).
#[derive(Clone)]
pub struct Maintainer {
    cache: Arc<LogCache>,
    /// Scrub cadence in simulated time; `Nanos::ZERO` disables scrubbing.
    scrub_every: Nanos,
    /// Simulated timestamp of the last scrub, shared across clones so
    /// concurrent drivers never double-scrub one due slot.
    last_scrub: Arc<AtomicU64>,
}

impl Maintainer {
    /// Creates a maintainer for `cache` (scrubbing disabled).
    pub fn new(cache: Arc<LogCache>) -> Self {
        Maintainer {
            cache,
            scrub_every: Nanos::ZERO,
            last_scrub: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Enables a scrubber pass every `every` of *simulated* time: any
    /// maintenance pass whose `now` is at least that far past the last
    /// scrub runs one.
    #[must_use]
    pub fn with_scrub_interval(mut self, every: Nanos) -> Self {
        self.scrub_every = every;
        self
    }

    /// Runs one maintenance pass at simulated time `now`, evicting until
    /// the clean-region pool reaches the watermark, then a scrub pass if
    /// one is due. Returns the evicted regions in eviction order. A
    /// watermark of 0 skips eviction refill.
    ///
    /// # Errors
    ///
    /// Propagates [`LogCache::maintain`] and [`LogCache::scrub`] failures.
    pub fn run_once(&self, now: Nanos) -> Result<Vec<RegionId>, CacheError> {
        let evicted = self.cache.maintain(now)?;
        self.scrub_if_due(now)?;
        Ok(evicted)
    }

    /// Runs a scrub pass when `now` is at least one interval past the
    /// last pass. The claim is a compare-exchange, so of several
    /// concurrent drivers exactly one scrubs a due slot.
    fn scrub_if_due(&self, now: Nanos) -> Result<(), CacheError> {
        if self.scrub_every == Nanos::ZERO {
            return Ok(());
        }
        // ordering-ok: acquire pairs with the AcqRel claim below so a
        // driver that loses the race also sees the winner's timestamp.
        let last = self.last_scrub.load(Ordering::Acquire);
        if now.as_nanos() < last.saturating_add(self.scrub_every.as_nanos()) {
            return Ok(());
        }
        // ordering-ok: the CAS is the claim ticket for this scrub slot;
        // AcqRel publishes the new deadline to the losing drivers.
        if self
            .last_scrub
            .compare_exchange(last, now.as_nanos(), Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Ok(()); // another driver claimed this slot
        }
        let report = self.cache.scrub(now);
        report.map(|_| ())
    }

    /// Starts a background thread that runs a maintenance pass every
    /// `poll` of wall-clock time, using the engine's observed simulated
    /// clock as "now". The thread stops when the returned handle is
    /// dropped or [`MaintainerHandle::stop`] is called.
    ///
    /// Maintenance I/O errors inside the thread are swallowed by design:
    /// eviction failures quarantine the offending region and the next
    /// foreground operation will surface any persistent backend breakage
    /// through its own typed error.
    pub fn spawn(self, poll: Duration) -> MaintainerHandle {
        let signal = Arc::new(StopSignal {
            stopped: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        let thread_signal = Arc::clone(&signal);
        let handle = std::thread::spawn(move || {
            // ordering-ok: acquire pairs with the Release store in
            // `stop()`; the flag is a plain shutdown latch.
            while !thread_signal.stopped.load(Ordering::Acquire) {
                let now = self.cache.observed_clock();
                let _ = self.cache.maintain(now);
                let guard = thread_signal.lock.lock().expect("maintainer lock poisoned");
                // ordering-ok: same stop-latch pairing as above.
                if thread_signal.stopped.load(Ordering::Acquire) {
                    break;
                }
                // Condvar timeout is the poll cadence; stop() short-circuits it.
                let _unused = thread_signal
                    .cv
                    .wait_timeout(guard, poll)
                    .expect("maintainer lock poisoned");
            }
        });
        MaintainerHandle {
            signal,
            thread: Some(handle),
        }
    }
}

struct StopSignal {
    stopped: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// Owns a spawned maintainer thread; stops and joins it on drop.
pub struct MaintainerHandle {
    signal: Arc<StopSignal>,
    thread: Option<JoinHandle<()>>,
}

impl MaintainerHandle {
    /// Signals the thread to stop and joins it. Idempotent.
    pub fn stop(&mut self) {
        // ordering-ok: release half of the stop latch read by the
        // maintainer thread's Acquire loads.
        self.signal.stopped.store(true, Ordering::Release);
        // Take the lock so the wake-up cannot slip between the thread's
        // stopped-check and its wait.
        {
            let _guard = self.signal.lock.lock().expect("maintainer lock poisoned");
            self.signal.cv.notify_all();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MaintainerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BlockBackend;
    use crate::engine::CacheConfig;
    use crate::policy::EvictionPolicy;
    use sim::{RamDisk, BLOCK_SIZE};

    fn watermark_cache(watermark: usize) -> Arc<LogCache> {
        let backend = Arc::new(BlockBackend::new(
            Arc::new(RamDisk::new(64)),
            4 * BLOCK_SIZE,
        ));
        let config = CacheConfig {
            clean_region_watermark: watermark,
            eviction: EvictionPolicy::Fifo,
            ..CacheConfig::small_test()
        };
        Arc::new(LogCache::new(backend, config).unwrap())
    }

    fn fill_all_regions(c: &LogCache) -> Nanos {
        let value = vec![1u8; 15 * 1024];
        let mut t = Nanos::ZERO;
        for i in 0..16u32 {
            let key = format!("k{i:02}");
            t = c.set(key.as_bytes(), &value, t).unwrap();
        }
        c.flush(t).unwrap()
    }

    #[test]
    fn run_once_is_deterministic() {
        // Two identical caches must evict the exact same victim sequence.
        let victims = |_: u32| {
            let c = watermark_cache(3);
            let t = fill_all_regions(&c);
            Maintainer::new(Arc::clone(&c)).run_once(t).unwrap()
        };
        assert_eq!(victims(0), victims(1));
        assert_eq!(victims(0).len(), 3);
    }

    #[test]
    fn passes_leave_no_io_in_flight() {
        // Every maintenance op goes through the engine's submit/complete
        // accounting; a quiescent cache must balance to zero.
        let c = watermark_cache(3);
        let t = fill_all_regions(&c);
        Maintainer::new(Arc::clone(&c)).run_once(t).unwrap();
        assert_eq!(c.io_in_flight(), 0);
    }

    #[test]
    fn background_thread_refills_pool() {
        let c = watermark_cache(4);
        let t = fill_all_regions(&c);
        assert_eq!(c.clean_regions(), 0);
        let mut handle = Maintainer::new(Arc::clone(&c)).spawn(Duration::from_millis(1));
        // Wall-clock wait for the background pass (bounded).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while c.clean_regions() < 4 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        handle.stop();
        assert_eq!(c.clean_regions(), 4, "background maintainer never refilled");
        assert!(c.metrics().maintainer_evictions >= 4);
        let _ = t;
    }

    #[test]
    fn scrub_interval_gates_scrub_passes() {
        let c = watermark_cache(0);
        let t = fill_all_regions(&c);
        let m = Maintainer::new(Arc::clone(&c)).with_scrub_interval(Nanos::from_millis(1));
        // First due pass scrubs; a pass inside the interval does not.
        let base = t + Nanos::from_millis(1);
        m.run_once(base).unwrap();
        assert_eq!(c.metrics().scrub_passes, 1);
        m.run_once(base).unwrap();
        assert_eq!(c.metrics().scrub_passes, 1, "scrubbed inside the interval");
        m.run_once(base + Nanos::from_millis(2)).unwrap();
        assert_eq!(c.metrics().scrub_passes, 2);
        // Without an interval the maintainer never scrubs.
        let plain = Maintainer::new(Arc::clone(&c));
        plain.run_once(base + Nanos::from_millis(10)).unwrap();
        assert_eq!(c.metrics().scrub_passes, 2);
    }

    #[test]
    fn stop_is_idempotent_and_drop_safe() {
        let c = watermark_cache(0);
        let mut handle = Maintainer::new(c).spawn(Duration::from_secs(3600));
        handle.stop();
        handle.stop();
        drop(handle);
    }
}
