//! Key-popularity distributions.

use rand::Rng;

/// Zipf-distributed ranks over `{0, …, n-1}` with exponent `s`.
///
/// Uses Hörmann's rejection-inversion method: exact for any `s > 0`,
/// constant time per sample, no per-element tables (important for the
/// multi-million-key spaces the experiments use).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use workload::Zipf;
///
/// let zipf = Zipf::new(1_000, 0.9);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let k = zipf.sample(&mut rng);
/// assert!(k < 1_000);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0` — configuration bugs.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf needs a non-empty support");
        assert!(s > 0.0, "zipf exponent must be positive");
        let h_x1 = Self::h_integral(1.5, s) - 1.0;
        let h_n = Self::h_integral(n as f64 + 0.5, s);
        let threshold = 2.0 - Self::h_integral_inverse(Self::h_integral(2.5, s) - Self::h(2.0, s), s);
        Zipf {
            n,
            s,
            h_x1,
            h_n,
            threshold,
        }
    }

    fn h(x: f64, s: f64) -> f64 {
        x.powf(-s)
    }

    fn h_integral(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    fn h_integral_inverse(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - s)).powf(1.0 / (1.0 - s))
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n as f64);
            if k - x <= self.threshold
                || u >= Self::h_integral(k + 0.5, self.s) - Self::h(k, self.s)
            {
                return k as u64 - 1;
            }
        }
    }
}

/// db_bench-style exponential-range key skew (`read_random_exp_range`).
///
/// A key is drawn as `floor(num · exp(−U · er)) mod num` with
/// `U ~ Uniform[0,1)`; larger `er` concentrates probability on low key
/// ids — the paper evaluates ER ∈ {15, 25}.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use workload::ExpRange;
///
/// let er = ExpRange::new(1_000_000, 25.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// assert!(er.sample(&mut rng) < 1_000_000);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ExpRange {
    num: u64,
    er: f64,
}

impl ExpRange {
    /// Creates the distribution over `[0, num)`.
    ///
    /// # Panics
    ///
    /// Panics if `num == 0` or `er < 0`.
    pub fn new(num: u64, er: f64) -> Self {
        assert!(num > 0, "key space must be non-empty");
        assert!(er >= 0.0, "exp range must be non-negative");
        ExpRange { num, er }
    }

    /// Number of keys.
    pub fn num(&self) -> u64 {
        self.num
    }

    /// Draws a key id; `er == 0` degenerates to uniform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.er == 0.0 {
            return rng.gen_range(0..self.num);
        }
        let u: f64 = rng.gen();
        let natural = (-u * self.er).exp();
        ((natural * self.num as f64) as u64) % self.num
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_stays_in_range() {
        let z = Zipf::new(100, 1.01);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[0] > counts[100] * 10);
        // Harmonic shape: P(0)/P(9) ≈ 10 for s = 1.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!((5.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zipf_small_s_flattens() {
        let skewed = Zipf::new(1000, 1.2);
        let flat = Zipf::new(1000, 0.2);
        let mut rng = StdRng::seed_from_u64(5);
        let top_share = |z: &Zipf, rng: &mut StdRng| {
            let mut top = 0u32;
            for _ in 0..20_000 {
                if z.sample(rng) < 10 {
                    top += 1;
                }
            }
            top
        };
        let s1 = top_share(&skewed, &mut rng);
        let s2 = top_share(&flat, &mut rng);
        assert!(s1 > s2 * 3, "skewed {s1} vs flat {s2}");
    }

    #[test]
    fn zipf_single_element() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn exp_range_skew_increases_with_er() {
        let mut rng = StdRng::seed_from_u64(9);
        let frac_low = |er: f64, rng: &mut StdRng| {
            let d = ExpRange::new(1_000_000, er);
            let mut low = 0u32;
            for _ in 0..20_000 {
                if d.sample(rng) < 1_000 {
                    low += 1;
                }
            }
            low as f64 / 20_000.0
        };
        let f15 = frac_low(15.0, &mut rng);
        let f25 = frac_low(25.0, &mut rng);
        assert!(f25 > f15, "er=25 ({f25}) should be more skewed than er=15 ({f15})");
        assert!(f15 > 0.2, "er=15 already quite skewed, got {f15}");
    }

    #[test]
    fn exp_range_zero_is_uniform() {
        let d = ExpRange::new(1000, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut low = 0;
        for _ in 0..10_000 {
            if d.sample(&mut rng) < 500 {
                low += 1;
            }
        }
        assert!((4_500..5_500).contains(&low), "not uniform: {low}");
    }

    #[test]
    fn exp_range_in_bounds() {
        let d = ExpRange::new(7, 25.0);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng) < 7);
        }
    }
}
