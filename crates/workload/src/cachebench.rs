//! CacheBench-style operation generator.
//!
//! Reproduces the op mix of the paper's micro-benchmark workload
//! (`feature_stress/navy/bc`, §4.1): 50% get, 30% set, 20% delete over a
//! Zipf-popular key space with the CacheLib object-size mixture.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dist::Zipf;
use crate::values::{key_for_id, value_for_key};

/// One generated cache operation. Keys/values are materialized bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Look up a key.
    Get {
        /// Key id (for bookkeeping).
        id: u64,
        /// Key bytes.
        key: Vec<u8>,
    },
    /// Insert/overwrite a key.
    Set {
        /// Key id.
        id: u64,
        /// Key bytes.
        key: Vec<u8>,
        /// Value bytes (deterministic per key + version).
        value: Vec<u8>,
    },
    /// Delete a key.
    Delete {
        /// Key id.
        id: u64,
        /// Key bytes.
        key: Vec<u8>,
    },
}

impl Op {
    /// The key id this operation targets.
    pub fn id(&self) -> u64 {
        match self {
            Op::Get { id, .. } | Op::Set { id, .. } | Op::Delete { id, .. } => *id,
        }
    }
}

/// Configuration for [`CacheBench`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CacheBenchConfig {
    /// Distinct keys in the workload (working set).
    pub num_keys: u64,
    /// Zipf exponent of key popularity.
    pub zipf_exponent: f64,
    /// Fraction of gets (paper: 0.5).
    pub get_ratio: f64,
    /// Fraction of sets (paper: 0.3).
    pub set_ratio: f64,
    /// Fraction of deletes (paper: 0.2, the remainder).
    pub delete_ratio: f64,
    /// Sample delete keys uniformly instead of by popularity. CacheBench
    /// drives each op type from its own generator; invalidations are not
    /// popularity-correlated, so this defaults to true in
    /// [`CacheBenchConfig::paper_mix`].
    pub delete_uniform: bool,
    /// RNG seed.
    pub seed: u64,
}

impl CacheBenchConfig {
    /// The paper's mix: 50/30/20 over a Zipf(0.9) key space.
    pub fn paper_mix(num_keys: u64, seed: u64) -> Self {
        CacheBenchConfig {
            num_keys,
            zipf_exponent: 0.9,
            get_ratio: 0.5,
            set_ratio: 0.3,
            delete_ratio: 0.2,
            delete_uniform: true,
            seed,
        }
    }
}

/// The generator. Infinite stream; call [`CacheBench::next_op`].
#[derive(Debug)]
pub struct CacheBench {
    zipf: Zipf,
    num_keys: u64,
    get_ratio: f64,
    set_ratio: f64,
    delete_uniform: bool,
    rng: StdRng,
    /// Per-key version counters so overwritten values verifiably change.
    versions: std::collections::HashMap<u64, u32>,
}

impl CacheBench {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if the ratios are negative or sum to more than 1 + ε.
    pub fn new(config: CacheBenchConfig) -> Self {
        let sum = config.get_ratio + config.set_ratio + config.delete_ratio;
        assert!(
            config.get_ratio >= 0.0
                && config.set_ratio >= 0.0
                && config.delete_ratio >= 0.0
                && (sum - 1.0).abs() < 1e-6,
            "op ratios must be non-negative and sum to 1 (got {sum})"
        );
        CacheBench {
            zipf: Zipf::new(config.num_keys, config.zipf_exponent),
            num_keys: config.num_keys,
            get_ratio: config.get_ratio,
            set_ratio: config.set_ratio,
            delete_uniform: config.delete_uniform,
            rng: StdRng::seed_from_u64(config.seed),
            versions: std::collections::HashMap::new(),
        }
    }

    /// The current version of a key (0 before any set).
    pub fn version_of(&self, id: u64) -> u32 {
        self.versions.get(&id).copied().unwrap_or(0)
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> Op {
        let id = self.zipf.sample(&mut self.rng);
        let key = key_for_id(id);
        let roll: f64 = self.rng.gen();
        if roll < self.get_ratio {
            Op::Get { id, key }
        } else if roll < self.get_ratio + self.set_ratio {
            let version = self.versions.entry(id).or_insert(0);
            *version += 1;
            let value = value_for_key(id, *version);
            Op::Set {
                id,
                key,
                value,
            }
        } else {
            let (id, key) = if self.delete_uniform {
                let id = self.rng.gen_range(0..self.num_keys);
                (id, key_for_id(id))
            } else {
                (id, key)
            };
            Op::Delete { id, key }
        }
    }
}

impl Iterator for CacheBench {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_matches_ratios() {
        let mut bench = CacheBench::new(CacheBenchConfig::paper_mix(10_000, 1));
        let (mut g, mut s, mut d) = (0u32, 0u32, 0u32);
        for _ in 0..20_000 {
            match bench.next_op() {
                Op::Get { .. } => g += 1,
                Op::Set { .. } => s += 1,
                Op::Delete { .. } => d += 1,
            }
        }
        assert!((9_000..11_000).contains(&g), "gets {g}");
        assert!((5_000..7_000).contains(&s), "sets {s}");
        assert!((3_000..5_000).contains(&d), "deletes {d}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = CacheBench::new(CacheBenchConfig::paper_mix(1_000, 7));
        let mut b = CacheBench::new(CacheBenchConfig::paper_mix(1_000, 7));
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn versions_bump_on_set() {
        let mut bench = CacheBench::new(CacheBenchConfig::paper_mix(10, 3));
        let mut last_value: Option<(u64, Vec<u8>)> = None;
        for _ in 0..200 {
            if let Op::Set { id, value, .. } = bench.next_op() {
                if let Some((prev_id, prev_val)) = &last_value {
                    if *prev_id == id {
                        assert_ne!(*prev_val, value, "rewrite produced identical value");
                    }
                }
                last_value = Some((id, value));
            }
        }
        assert!(last_value.is_some());
    }

    #[test]
    fn uniform_deletes_spread_over_keyspace() {
        let mut cfg = CacheBenchConfig::paper_mix(100_000, 9);
        cfg.delete_uniform = true;
        let mut bench = CacheBench::new(cfg);
        let mut high_ids = 0u32;
        let mut deletes = 0u32;
        for _ in 0..20_000 {
            if let Op::Delete { id, .. } = bench.next_op() {
                deletes += 1;
                if id > 50_000 {
                    high_ids += 1;
                }
            }
        }
        // Zipf deletes would almost never touch the cold half.
        assert!(high_ids * 3 > deletes, "{high_ids}/{deletes}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_ratios_panic() {
        let mut cfg = CacheBenchConfig::paper_mix(10, 1);
        cfg.set_ratio = 0.9;
        let _ = CacheBench::new(cfg);
    }

    #[test]
    fn iterator_interface() {
        let bench = CacheBench::new(CacheBenchConfig::paper_mix(100, 5));
        assert_eq!(bench.take(10).count(), 10);
    }
}
