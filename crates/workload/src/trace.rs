//! Operation-trace recording and replay.
//!
//! Experiments that compare schemes must feed each one the *identical*
//! operation stream. Generators are deterministic under a seed, but a
//! recorded trace also allows capturing a stream once (e.g. including
//! miss-fill decisions that depend on cache state) and replaying it
//! byte-identically, or persisting a workload alongside results.
//!
//! The format is a compact little-endian encoding of [`Op`] values.

use bytes::{Buf, BufMut};

use crate::cachebench::Op;

const TAG_GET: u8 = 1;
const TAG_SET: u8 = 2;
const TAG_DELETE: u8 = 3;

/// Records operations into an in-memory trace.
///
/// # Example
///
/// ```
/// use workload::trace::{TraceRecorder, replay};
/// use workload::{CacheBench, CacheBenchConfig};
///
/// let mut rec = TraceRecorder::new();
/// let mut gen = CacheBench::new(CacheBenchConfig::paper_mix(100, 1));
/// for _ in 0..50 {
///     rec.record(&gen.next_op());
/// }
/// let bytes = rec.finish();
/// let ops = replay(&bytes).unwrap();
/// assert_eq!(ops.len(), 50);
/// ```
#[derive(Debug, Default)]
pub struct TraceRecorder {
    buf: Vec<u8>,
    count: u64,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one operation.
    pub fn record(&mut self, op: &Op) {
        match op {
            Op::Get { id, key } => {
                self.buf.put_u8(TAG_GET);
                self.buf.put_u64_le(*id);
                self.buf.put_u16_le(key.len() as u16);
                self.buf.put_slice(key);
            }
            Op::Set { id, key, value } => {
                self.buf.put_u8(TAG_SET);
                self.buf.put_u64_le(*id);
                self.buf.put_u16_le(key.len() as u16);
                self.buf.put_slice(key);
                self.buf.put_u32_le(value.len() as u32);
                self.buf.put_slice(value);
            }
            Op::Delete { id, key } => {
                self.buf.put_u8(TAG_DELETE);
                self.buf.put_u64_le(*id);
                self.buf.put_u16_le(key.len() as u16);
                self.buf.put_slice(key);
            }
        }
        self.count += 1;
    }

    /// Operations recorded so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether anything has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finishes, returning the encoded trace.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.buf.len());
        out.put_u64_le(self.count);
        out.extend_from_slice(&self.buf);
        out
    }
}

/// Decodes a recorded trace back into operations.
///
/// # Errors
///
/// Returns a descriptive message for truncated or malformed traces.
pub fn replay(trace: &[u8]) -> Result<Vec<Op>, String> {
    let mut buf = trace;
    if buf.remaining() < 8 {
        return Err("trace too short for header".into());
    }
    let count = buf.get_u64_le();
    let mut out = Vec::with_capacity(count.min(1 << 20) as usize);
    for i in 0..count {
        if buf.remaining() < 11 {
            return Err(format!("trace truncated at op {i}"));
        }
        let tag = buf.get_u8();
        let id = buf.get_u64_le();
        let key_len = buf.get_u16_le() as usize;
        if buf.remaining() < key_len {
            return Err(format!("key truncated at op {i}"));
        }
        let key = buf[..key_len].to_vec();
        buf.advance(key_len);
        let op = match tag {
            TAG_GET => Op::Get { id, key },
            TAG_DELETE => Op::Delete { id, key },
            TAG_SET => {
                if buf.remaining() < 4 {
                    return Err(format!("value length truncated at op {i}"));
                }
                let value_len = buf.get_u32_le() as usize;
                if buf.remaining() < value_len {
                    return Err(format!("value truncated at op {i}"));
                }
                let value = buf[..value_len].to_vec();
                buf.advance(value_len);
                Op::Set { id, key, value }
            }
            other => return Err(format!("unknown op tag {other} at op {i}")),
        };
        out.push(op);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cachebench::{CacheBench, CacheBenchConfig};

    #[test]
    fn round_trip_preserves_every_op() {
        let mut rec = TraceRecorder::new();
        let mut gen = CacheBench::new(CacheBenchConfig::paper_mix(500, 3));
        let original: Vec<Op> = (0..200).map(|_| gen.next_op()).collect();
        for op in &original {
            rec.record(op);
        }
        assert_eq!(rec.len(), 200);
        let bytes = rec.finish();
        let replayed = replay(&bytes).unwrap();
        assert_eq!(replayed, original);
    }

    #[test]
    fn truncation_is_detected() {
        let mut rec = TraceRecorder::new();
        let mut gen = CacheBench::new(CacheBenchConfig::paper_mix(10, 1));
        for _ in 0..20 {
            rec.record(&gen.next_op());
        }
        let bytes = rec.finish();
        for cut in [0usize, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(replay(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn garbage_tag_rejected() {
        let mut bytes = Vec::new();
        bytes.put_u64_le(1);
        bytes.put_u8(99);
        bytes.put_u64_le(0);
        bytes.put_u16_le(0);
        assert!(replay(&bytes).unwrap_err().contains("unknown op tag"));
    }

    #[test]
    fn empty_trace_round_trips() {
        let rec = TraceRecorder::new();
        assert!(rec.is_empty());
        let bytes = rec.finish();
        assert!(replay(&bytes).unwrap().is_empty());
    }
}
