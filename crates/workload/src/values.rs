//! Deterministic value synthesis.
//!
//! Values are pure functions of the key id, so a harness can verify any
//! cache hit byte-for-byte without remembering what it wrote — and
//! experiments running on payload-discarding stores still know each
//! object's size.

/// Object size mixture approximating CacheLib's published workload
/// characterization: small objects dominate, a long tail of larger ones.
const SIZE_BUCKETS: [(usize, u32); 8] = [
    (64, 5),
    (128, 10),
    (256, 20),
    (512, 25),
    (1024, 20),
    (2048, 10),
    (4096, 7),
    (8192, 3),
];

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The deterministic value length for a key id, drawn from the CacheLib
/// size mixture.
///
/// # Example
///
/// ```
/// let a = workload::value_len_for_key(42);
/// assert_eq!(a, workload::value_len_for_key(42));
/// assert!(a >= 64 && a <= 8192);
/// ```
pub fn value_len_for_key(key_id: u64) -> usize {
    let total: u32 = SIZE_BUCKETS.iter().map(|&(_, w)| w).sum();
    let mut pick = (splitmix64(key_id) % total as u64) as u32;
    for &(size, weight) in &SIZE_BUCKETS {
        if pick < weight {
            return size;
        }
        pick -= weight;
    }
    SIZE_BUCKETS[SIZE_BUCKETS.len() - 1].0
}

/// Deterministic value bytes for a key id.
///
/// The same `(key_id, version)` always produces the same bytes; bumping
/// `version` models an update whose content verifiably changed.
///
/// # Example
///
/// ```
/// let v1 = workload::value_for_key(7, 0);
/// let v2 = workload::value_for_key(7, 0);
/// assert_eq!(v1, v2);
/// assert_ne!(v1, workload::value_for_key(7, 1));
/// ```
pub fn value_for_key(key_id: u64, version: u32) -> Vec<u8> {
    let len = value_len_for_key(key_id);
    let mut out = Vec::with_capacity(len);
    let mut state = splitmix64(key_id ^ ((version as u64) << 32) ^ 0xA5A5_5A5A);
    while out.len() < len {
        state = splitmix64(state);
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(len);
    out
}

/// Canonical key bytes for a key id (fixed-width, CacheBench-like).
pub fn key_for_id(key_id: u64) -> Vec<u8> {
    format!("key-{key_id:016x}").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_are_deterministic_and_in_mixture() {
        for id in 0..1000u64 {
            let len = value_len_for_key(id);
            assert!(SIZE_BUCKETS.iter().any(|&(s, _)| s == len));
            assert_eq!(len, value_len_for_key(id));
        }
    }

    #[test]
    fn mixture_is_used_broadly() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..10_000u64 {
            seen.insert(value_len_for_key(id));
        }
        assert!(seen.len() >= 6, "only {} sizes drawn", seen.len());
    }

    #[test]
    fn values_match_length_and_differ_across_keys() {
        let v = value_for_key(3, 0);
        assert_eq!(v.len(), value_len_for_key(3));
        assert_ne!(value_for_key(3, 0), value_for_key(4, 0));
    }

    #[test]
    fn keys_are_fixed_width_and_unique() {
        let a = key_for_id(1);
        let b = key_for_id(u64::MAX);
        assert_eq!(a.len(), b.len());
        assert_ne!(a, b);
    }
}
