//! Workload generators for the cache and KV-store experiments.
//!
//! * [`Zipf`] — skewed key popularity, the standard model for cache
//!   workloads (rejection-inversion sampling, exact for any `s > 0`).
//! * [`ExpRange`] — db_bench's `read_random_exp_range` style skew used by
//!   the paper's RocksDB evaluation (§4.2): larger ER values concentrate
//!   reads on fewer keys.
//! * [`CacheBench`] — a CacheBench-style op-mix generator reproducing the
//!   paper's `feature_stress/navy/bc` workload: 50% get / 30% set /
//!   20% delete over a Zipf-popular key space with a CacheLib-like object
//!   size mixture.
//! * [`value_for_key`] — deterministic value synthesis, so integrity can
//!   be verified without storing expected values.

pub mod cachebench;
pub mod dist;
pub mod trace;
pub mod values;

pub use cachebench::{CacheBench, CacheBenchConfig, Op};
pub use dist::{ExpRange, Zipf};
pub use trace::{replay, TraceRecorder};
pub use values::{value_for_key, value_len_for_key};
