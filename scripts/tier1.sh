#!/usr/bin/env bash
# Tier-1 gate: everything a change must pass before merging.
#
#   scripts/tier1.sh            # build + tests + clippy
#
# Run from anywhere; the script cd's to the repository root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: release build =="
cargo build --release

echo "== tier1: test suite =="
cargo test -q

echo "== tier1: clippy (warnings are errors, pinned allow-list in Cargo.toml) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: workspace static analysis (cargo xtask analyze) =="
# Lock-order graphs, I/O-ticket obligations, the atomic-ordering
# inventory, and the unsafe inventory — plus a freshness check that the
# checked-in ANALYSIS.md matches the sources (regenerate with
# `cargo xtask analyze --write`).
cargo xtask analyze

echo "== tier1: loom model checks (exhaustive interleavings) =="
# The vendored checker's own self-tests, then the engine protocol models.
cargo test -q -p loom
RUSTFLAGS="--cfg loom" cargo test -q -p zns-cache --test loom

echo "== tier1: fault matrix (${FAULT_MATRIX_SEEDS:-1} seed stream(s), release) =="
# Failure-path suite (fault injection, zone-death torture, crash-point
# recovery sweep) under distinct fault-RNG streams. The default runs one
# stream for speed; CI's fault-matrix job — or FAULT_MATRIX_SEEDS=8 here —
# sweeps all eight.
for s in $(seq 0 $(( ${FAULT_MATRIX_SEEDS:-1} - 1 ))); do
  FAULT_MATRIX_SEED=$s cargo test --release -q \
    --test fault_injection --test zone_death --test recovery
done

echo "== tier1: multi-thread smoke (all schemes, 8 workers, shared engine) =="
# Short mixed get/set run on every scheme at 1 and 8 threads. Asserts op
# conservation, hit/get self-consistency, a thread-count-invariant offered
# workload (hit ratios must match across thread counts), and a throughput
# floor: 8-thread ops/s >= 0.5x single-thread — the gate that catches a
# multi-thread collapse (File-Cache once fell 108.6k -> 4.7k ops/s). The
# full sweep (writes BENCH_throughput.json) is
# `cargo run --release -p zns-cache-bench --bin bench_threads`.
cargo run --release -p zns-cache-bench --bin bench_threads -- --smoke 1 --threads 8

echo "== tier1: loopback server latency gate (open-loop, fixed rate) =="
# Two Zone-Cache points through the real server stack (TCP loopback,
# sharded command loops, bounded queues). A mid-rate point: request
# accounting must close (served + busy + errors == scheduled), no typed
# errors, near-zero shed at a rate far under capacity, and p99 under a
# deliberately loose wall-clock ceiling. Then a capacity probe offered
# past the knee: achieved rate must hold >= 92k/s (1.5x the pre-batching
# knee), with real read/flush batching (means > 1) and a bounded
# reply_allocs count (no per-request allocation on the reply path).
# Catches lost replies, unshed overload, order-of-magnitude latency
# regressions, and any regression to per-request syscalls. The full
# sweep (writes BENCH_latency.json) is the bare bench_latency invocation.
cargo run --release -p zns-cache-bench --bin bench_latency -- --gate 1

echo "== tier1: perf floor (flash Zone-Cache, 8 threads) =="
# The async I/O core's acceptance bar: flash-profile Zone-Cache at 8
# threads must sustain >= 110k sim ops/s with a get p99 under 100us.
# One sweep point, not the full matrix; the full sweep (which also
# rewrites BENCH_throughput.json) is the bare bench_threads invocation.
cargo run --release -p zns-cache-bench --bin bench_threads -- --floor 1

echo "== tier1: OK =="
