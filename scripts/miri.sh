#!/usr/bin/env bash
# Miri pass over the unsafe core: RegionBuffer's raw-pointer writes and
# the object-header serialization helpers (DESIGN.md §9.2).
#
#   scripts/miri.sh
#
# Miri needs a nightly toolchain with the `miri` component; offline
# containers may not carry one, so the script skips (exit 0) with a
# notice rather than failing. CI installs nightly+miri and gets the real
# pass.

set -euo pipefail
cd "$(dirname "$0")/.."

if ! cargo +nightly miri --version >/dev/null 2>&1; then
    echo "miri: nightly toolchain with the miri component not available; skipping" >&2
    exit 0
fi

# Strict provenance: the buffer's pointer arithmetic must stay on the
# whole-slice base pointer (see RegionBuffer::base), not per-element
# references.
export MIRIFLAGS="${MIRIFLAGS:--Zmiri-strict-provenance}"

echo "== miri: RegionBuffer + serialization tests =="
cargo +nightly miri test -p zns-cache --lib -- buffer_ header_crc

echo "== miri: OK =="
